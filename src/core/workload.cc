#include "core/workload.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/random.h"
#include "common/strings.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::core {

namespace {

using relational::Table;
using relational::Value;

/// Runtime preconditions that legitimately stop being true between schedule
/// generation and replay (an actor crashed, a row got deleted, a crash
/// target is not idle). These skip the event instead of failing the run;
/// anything else — including a BX-law violation surfacing synchronously —
/// is a real failure.
bool IsSkippable(const Status& status) {
  return status.IsFailedPrecondition() || status.IsNotFound() ||
         status.IsAlreadyExists() || status.IsUnavailable() ||
         status.IsConflict();
}

/// Keys of `table` whose integer id lies in [lo, hi], in key order.
std::vector<relational::Key> KeysInRange(const Table& table, int64_t lo,
                                         int64_t hi) {
  std::vector<relational::Key> keys;
  for (const auto& [key, row] : table.scan()) {
    if (key.empty() || key[0].type() != relational::DataType::kInt) continue;
    const int64_t id = key[0].AsInt();
    if (id >= lo && id <= hi) keys.push_back(key);
  }
  return keys;
}

}  // namespace

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSourceUpdate:
      return "source_update";
    case EventKind::kViewUpdate:
      return "view_update";
    case EventKind::kInsertRow:
      return "insert_row";
    case EventKind::kDeleteRow:
      return "delete_row";
    case EventKind::kRevoke:
      return "revoke";
    case EventKind::kGrant:
      return "grant";
    case EventKind::kIsolate:
      return "isolate";
    case EventKind::kHeal:
      return "heal";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRestart:
      return "restart";
    case EventKind::kDropStorm:
      return "drop_storm";
    case EventKind::kDropCalm:
      return "drop_calm";
    case EventKind::kRun:
      return "run";
  }
  return "unknown";
}

Json WorkloadEvent::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("kind", std::string(EventKindName(kind)));
  out.Set("table", static_cast<uint64_t>(table));
  out.Set("actor", static_cast<uint64_t>(actor));
  out.Set("attr", attr);
  out.Set("arg", arg);
  out.Set("token", token);
  return out;
}

Json Schedule::ToJson() const {
  Json opts = Json::MakeObject();
  opts.Set("seed", options.seed);
  opts.Set("events", static_cast<uint64_t>(options.events));
  opts.Set("illegal_write_fraction", options.illegal_write_fraction);
  opts.Set("crash_weight", options.crash_weight);
  opts.Set("partition_weight", options.partition_weight);
  opts.Set("storm_weight", options.storm_weight);
  opts.Set("permission_weight", options.permission_weight);
  Json out = Json::MakeObject();
  out.Set("options", std::move(opts));
  Json array = Json::MakeArray();
  for (const auto& event : events) array.Append(event.ToJson());
  out.Set("events", std::move(array));
  return out;
}

Schedule GenerateSchedule(const NetworkSpec& spec,
                          const WorkloadOptions& options) {
  Schedule schedule;
  schedule.options = options;
  Rng rng(options.seed);

  // Symbolic world state so every emitted event is legal at its position.
  std::vector<std::set<std::string>> revoked(spec.tables.size());
  std::vector<std::pair<size_t, std::string>> open_revokes;
  std::set<size_t> isolated;
  std::set<size_t> crashed;
  bool storm = false;
  std::vector<size_t> durable_peers;
  for (const PeerSpec& peer : spec.peers) {
    if (peer.durable) durable_peers.push_back(peer.index);
  }

  auto gap = [&](int64_t floor_ms, int64_t span_ms) {
    WorkloadEvent run;
    run.kind = EventKind::kRun;
    run.arg = (floor_ms + static_cast<int64_t>(rng.NextBelow(
                              static_cast<uint64_t>(span_ms)))) *
              kMicrosPerMilli;
    schedule.events.push_back(std::move(run));
  };

  // Tables whose authority currently has a consumer attribute to revoke.
  auto revocable_tables = [&]() {
    std::vector<size_t> out;
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      for (const auto& attr : spec.tables[t].consumer_writable) {
        if (revoked[t].count(attr) == 0) {
          out.push_back(t);
          break;
        }
      }
    }
    return out;
  };

  for (size_t n = 0; n < options.events; ++n) {
    std::vector<EventKind> kinds = {
        EventKind::kSourceUpdate, EventKind::kViewUpdate,
        EventKind::kInsertRow,    EventKind::kDeleteRow,
        EventKind::kRevoke,       EventKind::kGrant,
        EventKind::kIsolate,      EventKind::kHeal,
        EventKind::kCrash,        EventKind::kRestart,
        EventKind::kDropStorm,    EventKind::kDropCalm};
    const std::vector<size_t> revocable = revocable_tables();
    const bool can_isolate = isolated.size() + crashed.size() + 1 <
                             spec.peers.size();
    const bool can_crash = crashed.size() < durable_peers.size();
    std::vector<double> weights = {
        4.0,
        4.0,
        2.0,
        1.5,
        revocable.empty() ? 0.0 : options.permission_weight,
        open_revokes.empty() ? 0.0 : options.permission_weight * 0.5,
        can_isolate ? options.partition_weight : 0.0,
        isolated.empty() ? 0.0 : options.partition_weight,
        can_crash ? options.crash_weight : 0.0,
        crashed.empty() ? 0.0 : options.crash_weight,
        storm ? 0.0 : options.storm_weight,
        storm ? options.storm_weight : 0.0};

    WorkloadEvent event;
    event.kind = kinds[rng.NextWeightedIndex(weights)];
    event.token = StrCat("e", n, "-", rng.NextAlnumString(6));
    switch (event.kind) {
      case EventKind::kSourceUpdate: {
        event.table = rng.NextBelow(spec.tables.size());
        const SharedTableSpec& table = spec.tables[event.table];
        event.actor = table.provider;
        event.attr = rng.PickOne(table.raw_attributes);
        event.arg = static_cast<int64_t>(rng.NextBelow(1 << 20));
        break;
      }
      case EventKind::kViewUpdate: {
        event.table = rng.NextBelow(spec.tables.size());
        const SharedTableSpec& table = spec.tables[event.table];
        const bool illegal = rng.NextBool(options.illegal_write_fraction);
        // Illegal writes must come from the consumer (the provider may
        // write everything); legal ones are consumer-heavy but mixed.
        const bool consumer_side =
            illegal ||
            (crashed.count(table.consumer) == 0 && rng.NextBool(0.7));
        event.actor = consumer_side ? table.consumer : table.provider;
        const std::vector<std::string> view_attrs = table.ViewAttributes();
        if (illegal) {
          // An attribute the consumer may NOT write — the contract denies
          // the cascade mid-flight. Falls back to a legal write when the
          // consumer may write everything.
          std::vector<std::string> forbidden;
          for (const auto& attr : view_attrs) {
            if (std::find(table.consumer_writable.begin(),
                          table.consumer_writable.end(),
                          attr) == table.consumer_writable.end()) {
              forbidden.push_back(attr);
            }
          }
          event.attr = forbidden.empty() ? rng.PickOne(view_attrs)
                                         : rng.PickOne(forbidden);
        } else if (consumer_side) {
          event.attr = rng.PickOne(table.consumer_writable);
        } else {
          event.attr = rng.PickOne(view_attrs);
        }
        event.arg = static_cast<int64_t>(rng.NextBelow(1 << 20));
        break;
      }
      case EventKind::kInsertRow:
      case EventKind::kDeleteRow: {
        event.table = rng.NextBelow(spec.tables.size());
        const SharedTableSpec& table = spec.tables[event.table];
        const bool consumer_side =
            crashed.count(table.consumer) == 0 && rng.NextBool(0.5);
        event.actor = consumer_side ? table.consumer : table.provider;
        event.arg = static_cast<int64_t>(rng.NextBelow(1 << 20));
        break;
      }
      case EventKind::kRevoke: {
        event.table = rng.PickOne(revocable);
        const SharedTableSpec& table = spec.tables[event.table];
        std::vector<std::string> candidates;
        for (const auto& attr : table.consumer_writable) {
          if (revoked[event.table].count(attr) == 0) candidates.push_back(attr);
        }
        event.attr = rng.PickOne(candidates);
        event.actor = table.authority;
        revoked[event.table].insert(event.attr);
        open_revokes.emplace_back(event.table, event.attr);
        break;
      }
      case EventKind::kGrant: {
        const auto [table_index, attr] = open_revokes.front();
        open_revokes.erase(open_revokes.begin());
        event.table = table_index;
        event.attr = attr;
        event.actor = spec.tables[table_index].authority;
        revoked[table_index].erase(attr);
        break;
      }
      case EventKind::kIsolate: {
        std::vector<size_t> candidates;
        for (const PeerSpec& peer : spec.peers) {
          if (isolated.count(peer.index) == 0 &&
              crashed.count(peer.index) == 0) {
            candidates.push_back(peer.index);
          }
        }
        event.actor = rng.PickOne(candidates);
        isolated.insert(event.actor);
        break;
      }
      case EventKind::kHeal: {
        std::vector<size_t> candidates(isolated.begin(), isolated.end());
        event.actor = rng.PickOne(candidates);
        isolated.erase(event.actor);
        break;
      }
      case EventKind::kCrash: {
        std::vector<size_t> candidates;
        for (size_t peer : durable_peers) {
          if (crashed.count(peer) == 0) candidates.push_back(peer);
        }
        event.actor = rng.PickOne(candidates);
        event.arg = rng.NextBool(0.5) ? 1 : 0;  // bit 0: torn WAL tail
        crashed.insert(event.actor);
        break;
      }
      case EventKind::kRestart: {
        std::vector<size_t> candidates(crashed.begin(), crashed.end());
        event.actor = rng.PickOne(candidates);
        crashed.erase(event.actor);
        break;
      }
      case EventKind::kDropStorm: {
        event.arg = 30 + static_cast<int64_t>(rng.NextBelow(121));
        storm = true;
        break;
      }
      case EventKind::kDropCalm: {
        storm = false;
        break;
      }
      case EventKind::kRun:
        break;
    }
    schedule.events.push_back(std::move(event));
    gap(200, 801);
  }

  // Closers, so a full replay hands the oracles a healable world even
  // before Finish() runs (prefix replays rely on Finish() instead).
  if (storm) {
    WorkloadEvent calm;
    calm.kind = EventKind::kDropCalm;
    schedule.events.push_back(std::move(calm));
    gap(200, 801);
  }
  for (size_t peer : isolated) {
    WorkloadEvent heal;
    heal.kind = EventKind::kHeal;
    heal.actor = peer;
    schedule.events.push_back(std::move(heal));
    gap(200, 801);
  }
  for (size_t peer : crashed) {
    WorkloadEvent restart;
    restart.kind = EventKind::kRestart;
    restart.actor = peer;
    schedule.events.push_back(std::move(restart));
    gap(500, 1001);
  }
  for (const auto& [table_index, attr] : open_revokes) {
    WorkloadEvent grant;
    grant.kind = EventKind::kGrant;
    grant.table = table_index;
    grant.attr = attr;
    grant.actor = spec.tables[table_index].authority;
    schedule.events.push_back(std::move(grant));
    gap(200, 801);
  }
  WorkloadEvent settle;
  settle.kind = EventKind::kRun;
  settle.arg = 10 * kMicrosPerSecond;
  schedule.events.push_back(std::move(settle));
  return schedule;
}

// ---------------------------------------------------------------------------
// WorkloadRunner
// ---------------------------------------------------------------------------

Status WorkloadRunner::RunEvent(const WorkloadEvent& event) {
  const NetworkSpec& spec = scenario_->spec();
  switch (event.kind) {
    case EventKind::kRun: {
      scenario_->RunFor(event.arg);
      return Status::OK();
    }
    case EventKind::kSourceUpdate: {
      const SharedTableSpec& table = spec.tables[event.table];
      Peer* provider = scenario_->peer(event.actor);
      if (provider == nullptr) return Status::FailedPrecondition("actor down");
      const std::string& source = spec.peers[event.actor].source_table;
      MEDSYNC_ASSIGN_OR_RETURN(Table snapshot,
                               provider->database().Snapshot(source));
      const std::vector<relational::Key> keys =
          KeysInRange(snapshot, table.key_lo, table.key_hi);
      if (keys.empty()) return Status::NotFound("no row in range");
      const relational::Key key =
          keys[static_cast<size_t>(event.arg) % keys.size()];
      const std::string attr = event.attr;
      const std::string token = event.token;
      return provider->UpdateSourceAndPropagate(
          source, [&](relational::Database* db) {
            return db->UpdateAttribute(source, key, attr,
                                       Value::String(token));
          });
    }
    case EventKind::kViewUpdate: {
      const SharedTableSpec& table = spec.tables[event.table];
      Peer* actor = scenario_->peer(event.actor);
      if (actor == nullptr) return Status::FailedPrecondition("actor down");
      MEDSYNC_ASSIGN_OR_RETURN(Table view,
                               actor->ReadSharedTable(table.table_id));
      if (view.empty()) return Status::NotFound("view is empty");
      std::vector<relational::Key> keys;
      for (const auto& [key, row] : view.scan()) keys.push_back(key);
      const relational::Key& key =
          keys[static_cast<size_t>(event.arg) % keys.size()];
      Status updated = actor->UpdateSharedAttribute(
          table.table_id, key, event.attr, Value::String(event.token));
      // A synchronous permission denial IS the exercised behaviour, not a
      // replay failure (the async denial path goes through the contract).
      if (updated.IsPermissionDenied()) return Status::OK();
      return updated;
    }
    case EventKind::kInsertRow: {
      const SharedTableSpec& table = spec.tables[event.table];
      Peer* actor = scenario_->peer(event.actor);
      if (actor == nullptr) return Status::FailedPrecondition("actor down");
      MEDSYNC_ASSIGN_OR_RETURN(Table view,
                               actor->ReadSharedTable(table.table_id));
      int64_t free_id = -1;
      for (int64_t id = table.key_lo; id <= table.key_hi; ++id) {
        if (!view.Contains({Value::Int(id)})) {
          free_id = id;
          break;
        }
      }
      if (free_id < 0) return Status::FailedPrecondition("no free id");
      relational::Row row;
      for (const auto& attr : view.schema().attributes()) {
        row.push_back(attr.name == medical::kPatientId
                          ? Value::Int(free_id)
                          : Value::String(event.token));
      }
      return actor->InsertSharedRow(table.table_id, std::move(row));
    }
    case EventKind::kDeleteRow: {
      const SharedTableSpec& table = spec.tables[event.table];
      Peer* actor = scenario_->peer(event.actor);
      if (actor == nullptr) return Status::FailedPrecondition("actor down");
      MEDSYNC_ASSIGN_OR_RETURN(Table view,
                               actor->ReadSharedTable(table.table_id));
      // Only rows in the slack region are deletable, so the populated rows
      // that source updates target survive the whole run.
      const PeerSpec& provider = spec.peers[table.provider];
      const int64_t first_free =
          provider.id_begin + static_cast<int64_t>(provider.populated);
      const std::vector<relational::Key> keys =
          KeysInRange(view, first_free, table.key_hi);
      if (keys.empty()) return Status::NotFound("no deletable row");
      return actor->DeleteSharedRow(
          table.table_id, keys[static_cast<size_t>(event.arg) % keys.size()]);
    }
    case EventKind::kRevoke:
    case EventKind::kGrant: {
      const SharedTableSpec& table = spec.tables[event.table];
      Peer* authority = scenario_->peer(event.actor);
      if (authority == nullptr) {
        return Status::FailedPrecondition("authority down");
      }
      const bool grant = event.kind == EventKind::kGrant;
      MEDSYNC_RETURN_IF_ERROR(
          authority
              ->SubmitChangePermission(table.table_id, event.attr,
                                       scenario_->peer_address(table.consumer),
                                       grant)
              .status());
      if (grant) {
        const auto it = std::find(open_revokes_.begin(), open_revokes_.end(),
                                  std::make_pair(event.table, event.attr));
        if (it != open_revokes_.end()) open_revokes_.erase(it);
      } else {
        open_revokes_.emplace_back(event.table, event.attr);
      }
      return Status::OK();
    }
    case EventKind::kIsolate: {
      scenario_->IsolatePeer(event.actor, true);
      return Status::OK();
    }
    case EventKind::kHeal: {
      scenario_->IsolatePeer(event.actor, false);
      return Status::OK();
    }
    case EventKind::kCrash: {
      Peer* victim = scenario_->peer(event.actor);
      if (victim == nullptr) return Status::FailedPrecondition("already down");
      // A peer crashed with staged (approved-but-unfetched) content strands
      // it nowhere recoverable; give in-flight work a bounded chance to
      // drain, then skip the crash rather than corrupt the run.
      const Micros interval = spec.options.block_interval;
      for (int round = 0; round < 10 && victim->HasPendingWork(); ++round) {
        scenario_->RunFor(interval);
      }
      return scenario_->CrashPeer(event.actor, (event.arg & 1) != 0);
    }
    case EventKind::kRestart: {
      size_t target = event.actor;
      if (scenario_->IsUp(target)) {
        // The scheduled victim survived (its crash was skipped); restart
        // whichever durable peer is actually down instead.
        bool found = false;
        for (size_t i = 0; i < scenario_->peer_count(); ++i) {
          if (!scenario_->IsUp(i)) {
            target = i;
            found = true;
            break;
          }
        }
        if (!found) return Status::FailedPrecondition("nobody is down");
      }
      return scenario_->RestartPeer(target);
    }
    case EventKind::kDropStorm: {
      scenario_->network().set_drop_probability(
          static_cast<double>(event.arg) / 1000.0);
      return Status::OK();
    }
    case EventKind::kDropCalm: {
      scenario_->network().set_drop_probability(
          spec.options.drop_probability);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled event kind");
}

Status WorkloadRunner::RunPrefix(size_t prefix) {
  const size_t count = std::min(prefix, schedule_->events.size());
  for (size_t i = 0; i < count; ++i) {
    Status status = RunEvent(schedule_->events[i]);
    if (status.ok()) {
      ++executed_;
    } else if (IsSkippable(status)) {
      ++skipped_;
    } else {
      return Status(status.code(),
                    StrCat("event ", i, " (",
                           EventKindName(schedule_->events[i].kind),
                           "): ", status.message()));
    }
  }
  return Status::OK();
}

Status WorkloadRunner::SweepStaleViews() {
  const NetworkSpec& spec = scenario_->spec();
  for (int round = 0; round < 6; ++round) {
    size_t swept = 0;
    for (size_t t = 0; t < spec.tables.size(); ++t) {
      const SharedTableSpec& table = spec.tables[t];
      Peer* provider = scenario_->peer(table.provider);
      Peer* consumer = scenario_->peer(table.consumer);
      if (provider == nullptr || consumer == nullptr) {
        return Status::FailedPrecondition(
            StrCat(table.table_id, ": a sharing peer is down during sweep"));
      }
      MEDSYNC_ASSIGN_OR_RETURN(Peer::TableSyncState provider_state,
                               provider->GetSyncState(table.table_id));
      MEDSYNC_ASSIGN_OR_RETURN(Peer::TableSyncState consumer_state,
                               consumer->GetSyncState(table.table_id));
      MEDSYNC_ASSIGN_OR_RETURN(Table provider_view,
                               provider->ReadSharedTable(table.table_id));
      MEDSYNC_ASSIGN_OR_RETURN(Table consumer_view,
                               consumer->ReadSharedTable(table.table_id));
      if (!provider_state.needs_refresh && !consumer_state.needs_refresh &&
          provider_view == consumer_view) {
        continue;
      }
      // A denied cascade left this table stale somewhere. A fresh
      // provider-side source update (the provider may write every view
      // attribute) cascades through and re-materializes both views.
      const std::string& source = spec.peers[table.provider].source_table;
      MEDSYNC_ASSIGN_OR_RETURN(Table snapshot,
                               provider->database().Snapshot(source));
      const std::vector<relational::Key> keys =
          KeysInRange(snapshot, table.key_lo, table.key_hi);
      if (keys.empty()) {
        return Status::FailedPrecondition(
            StrCat(table.table_id, ": nothing to sweep with"));
      }
      const relational::Key key = keys.front();
      const std::string attr = table.raw_attributes[0];
      const std::string token = StrCat("sweep-", round, "-", t);
      MEDSYNC_RETURN_IF_ERROR(provider->UpdateSourceAndPropagate(
          source, [&](relational::Database* db) {
            return db->UpdateAttribute(source, key, attr,
                                       Value::String(token));
          }));
      ++swept;
    }
    if (swept == 0) return Status::OK();
    MEDSYNC_RETURN_IF_ERROR(scenario_->SettleAll());
  }
  return Status::FailedPrecondition(
      "views still disagree after 6 sweep rounds");
}

Status WorkloadRunner::Finish() {
  const NetworkSpec& spec = scenario_->spec();
  scenario_->network().set_drop_probability(spec.options.drop_probability);
  for (size_t i = 0; i < scenario_->peer_count(); ++i) {
    if (scenario_->IsIsolated(i)) scenario_->IsolatePeer(i, false);
  }
  for (size_t i = 0; i < scenario_->peer_count(); ++i) {
    if (!scenario_->IsUp(i)) {
      MEDSYNC_RETURN_IF_ERROR(scenario_->RestartPeer(i));
    }
  }
  scenario_->RunFor(5 * spec.options.block_interval);
  // Re-grant whatever is still revoked so the convergence sweep has full
  // write permissions to work with.
  std::vector<std::pair<size_t, std::string>> still_open = open_revokes_;
  for (const auto& [table_index, attr] : still_open) {
    const SharedTableSpec& table = spec.tables[table_index];
    Peer* authority = scenario_->peer(table.authority);
    if (authority == nullptr) {
      return Status::FailedPrecondition("authority down in Finish");
    }
    MEDSYNC_RETURN_IF_ERROR(
        authority
            ->SubmitChangePermission(table.table_id, attr,
                                     scenario_->peer_address(table.consumer),
                                     true)
            .status());
  }
  open_revokes_.clear();
  MEDSYNC_RETURN_IF_ERROR(scenario_->SettleAll());
  MEDSYNC_RETURN_IF_ERROR(SweepStaleViews());
  return scenario_->SettleAll();
}

// ---------------------------------------------------------------------------
// Soak entry point + shrinker
// ---------------------------------------------------------------------------

Status RunGeneratedSoak(const GenOptions& gen_options,
                        const WorkloadOptions& workload_options,
                        size_t prefix, SoakReport* report) {
  MEDSYNC_ASSIGN_OR_RETURN(std::unique_ptr<GeneratedScenario> scenario,
                           GeneratedScenario::Create(gen_options));
  const Schedule schedule =
      GenerateSchedule(scenario->spec(), workload_options);
  WorkloadRunner runner(scenario.get(), &schedule);
  Status run = runner.RunPrefix(prefix);
  if (run.ok()) run = runner.Finish();
  if (report != nullptr) {
    report->fingerprint = scenario->Fingerprint();
    report->lane_invariant_fingerprint =
        scenario->LaneInvariantFingerprint();
    report->executed = runner.executed();
    report->skipped = runner.skipped();
    report->chain_height = scenario->node(0).blockchain().height();
  }
  MEDSYNC_RETURN_IF_ERROR(run);
  MEDSYNC_RETURN_IF_ERROR(scenario->VerifyConverged());
  return scenario->VerifyAuditGapless();
}

size_t ShrinkToMinimalFailingPrefix(
    const std::function<Status(size_t prefix)>& run, size_t total,
    Status* failure) {
  Status at_zero = run(0);
  if (!at_zero.ok()) {
    // The world itself fails before any event — bootstrap is the bug.
    if (failure != nullptr) *failure = at_zero;
    return 0;
  }
  size_t passing = 0;       // largest prefix known to pass
  size_t failing = total;   // smallest prefix known to fail
  Status failing_status = Status::OK();
  while (failing - passing > 1) {
    const size_t mid = passing + (failing - passing) / 2;
    Status status = run(mid);
    if (status.ok()) {
      passing = mid;
    } else {
      failing = mid;
      failing_status = status;
    }
  }
  if (failing_status.ok()) failing_status = run(failing);
  if (failure != nullptr) *failure = failing_status;
  return failing;
}

}  // namespace medsync::core
