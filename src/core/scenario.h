#ifndef MEDSYNC_CORE_SCENARIO_H_
#define MEDSYNC_CORE_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/threading/thread_pool.h"
#include "core/peer.h"
#include "net/network.h"
#include "net/simulator.h"
#include "runtime/chain_node.h"

namespace medsync::core {

/// Which sealing scheme the chain nodes run. PoA models the private chain
/// the paper recommends (Section IV-3); PoW the public-Ethereum deployment
/// it argues against. In PoW mode only node 0 mines (a single-miner
/// private PoW chain) so block production stays deterministic.
enum class ConsensusMode { kPoa, kPow };

/// Options for the canonical doctor/patient/researcher deployment of the
/// paper's Fig. 1 + Fig. 2.
struct ScenarioOptions {
  uint64_t seed = 42;
  ConsensusMode consensus = ConsensusMode::kPoa;
  uint32_t pow_difficulty_bits = 8;
  /// Number of chain nodes (in PoA mode each is an authority with
  /// round-robin sealing).
  size_t chain_node_count = 3;
  /// Block production interval (the paper discusses Ethereum's ~12 s; the
  /// default here keeps tests fast while staying far above network
  /// latency).
  Micros block_interval = 1 * kMicrosPerSecond;
  /// 0 = use the exact two-row data of Fig. 1; otherwise generate this many
  /// synthetic records.
  size_t record_count = 0;
  DependencyStrategy strategy = DependencyStrategy::kAnalyzeChange;
  /// How every peer re-materializes affected views (delta push vs full
  /// lens get). Both modes produce byte-identical database state —
  /// core_determinism_test proves it.
  ViewMaintenance maintenance = ViewMaintenance::kIncremental;
  net::LatencyModel latency;
  size_t max_block_txs = 100;
  /// 0 = fully serial (no pool). Otherwise the scenario owns a ThreadPool
  /// of this many workers, shared by every chain node (block validation,
  /// Merkle commitment, PoW sealing) and every peer's sync manager
  /// (cascade rederivation). All pooled paths are deterministic, so runs
  /// are byte-identical across worker counts — core_determinism_test
  /// proves it for 1/2/8.
  size_t worker_threads = 0;
  /// Peer-to-peer messages ride a ReliableChannel (ack/retransmit with
  /// seeded exponential backoff); see PeerConfig::reliable_delivery.
  bool reliable_delivery = true;
  net::ReliableChannel::Options reliable;
  /// Periodic SyncWithChain reconciliation per peer; 0 disables.
  Micros peer_catch_up_interval = 3 * kMicrosPerSecond;
  /// Probability that any message is lost, applied AFTER the bootstrap
  /// settles (deploy/registration run loss-free; the fault-tolerance
  /// machinery then has to carry the actual sharing protocol).
  double drop_probability = 0.0;
  /// Simulated-time epoch the world starts at (genesis timestamp, first
  /// seal tick). Generated scenarios derive this from the seed so a seed
  /// fully describes the run, including every block timestamp.
  Micros epoch = SimClock::kDefaultEpoch;
};

/// The fully wired three-stakeholder deployment:
///  * `chain_node_count` PoA chain nodes running the metadata contract;
///  * Doctor (source D3), Patient (source D1), Researcher (source D2),
///    each holding its attribute subset of the same full records;
///  * shared tables "D13&D31" (patient<->doctor, attributes a0,a1,a2,a4)
///    and "D23&D32" (doctor<->researcher, attributes a1,a5), with the
///    write-permission matrix of Fig. 3;
///  * the metadata contract deployed and both tables registered on-chain.
///
/// After Create() returns, the chain has already sealed the deployment and
/// registration transactions and all peers are synced and idle.
class ClinicScenario {
 public:
  static Result<std::unique_ptr<ClinicScenario>> Create(
      const ScenarioOptions& options);

  ~ClinicScenario();

  net::Simulator& simulator() { return *simulator_; }
  net::SimNetwork& network() { return *network_; }

  Peer& doctor() { return *doctor_; }
  Peer& patient() { return *patient_; }
  Peer& researcher() { return *researcher_; }

  runtime::ChainNode& node(size_t i) { return *nodes_[i]; }
  size_t node_count() const { return nodes_.size(); }

  const crypto::Address& contract() const { return contract_; }

  /// The scenario-wide registry every component (network, nodes, sealers,
  /// peers, WALs) reports into, and the structured Fig. 4/5 step trace.
  metrics::MetricsRegistry& metrics() { return *metrics_; }
  metrics::ProtocolTracer& tracer() { return *tracer_; }

  /// Canonical JSON snapshot of every counter/gauge/histogram. Deterministic
  /// under the sim clock: byte-identical across worker_threads settings.
  Json MetricsSnapshot() const { return metrics_->Snapshot(); }

  /// Shared table ids.
  static constexpr char kPatientDoctorTable[] = "D13&D31";
  static constexpr char kDoctorResearcherTable[] = "D23&D32";

  /// Runs the simulation until every peer is idle, every mempool is empty,
  /// and no contract entry has outstanding acks — i.e. the system is
  /// quiescent — or until `timeout` of simulated time passes (Timeout).
  Status SettleAll(Micros timeout = 600 * kMicrosPerSecond);

  /// The contract's metadata entry for `table_id` (via node 0).
  Result<Json> Entry(const std::string& table_id);

 private:
  ClinicScenario() = default;

  bool Quiescent() const;

  ScenarioOptions options_;
  /// Declared before the components that borrow them so they outlive them
  /// all (destruction runs bottom-up).
  std::unique_ptr<metrics::MetricsRegistry> metrics_;
  std::unique_ptr<metrics::ProtocolTracer> tracer_;
  std::unique_ptr<threading::ThreadPool> pool_;
  std::unique_ptr<net::Simulator> simulator_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<std::unique_ptr<runtime::ChainNode>> nodes_;
  std::unique_ptr<Peer> doctor_;
  std::unique_ptr<Peer> patient_;
  std::unique_ptr<Peer> researcher_;
  crypto::Address contract_;
};

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_SCENARIO_H_
