#ifndef MEDSYNC_CORE_WORKLOAD_H_
#define MEDSYNC_CORE_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/scenario_gen.h"

namespace medsync::core {

/// Seeded mixed-event schedules over a generated network: CRUD storms,
/// concurrent cascades, permission grant/revoke racing in-flight cascades,
/// message-loss storms, single-peer partitions, and crash/restart of
/// durable peers — the whole adversity menu, replayable byte-identically
/// from (network seed, workload seed).

/// One step of a generated schedule.
enum class EventKind {
  /// A provider updates its own source table (Fig. 5 initiator flow).
  kSourceUpdate,
  /// A peer updates one attribute of a shared view (Fig. 4 update; a
  /// deliberate fraction targets non-writable attributes, so the contract
  /// denies the cascade mid-flight).
  kViewUpdate,
  /// Insert / delete a row of a shared view (entry-level Create/Delete).
  kInsertRow,
  kDeleteRow,
  /// The table's authority revokes / grants the consumer's write permission
  /// on a tracked attribute (grant closes the oldest open revoke).
  kRevoke,
  kGrant,
  /// Cut / heal every link of one peer (single-peer partition).
  kIsolate,
  kHeal,
  /// Crash / restart a durable peer (kCrash's arg bit 0 picks a torn WAL
  /// tail).
  kCrash,
  kRestart,
  /// Raise / clear the network drop probability (arg = permille).
  kDropStorm,
  kDropCalm,
  /// Let simulated time pass (arg = microseconds).
  kRun
};

std::string_view EventKindName(EventKind kind);

struct WorkloadEvent {
  EventKind kind = EventKind::kRun;
  /// Index into spec.tables (kSourceUpdate/kViewUpdate/kInsertRow/
  /// kDeleteRow/kRevoke/kGrant); unused otherwise.
  size_t table = 0;
  /// Peer index performing (or suffering) the event.
  size_t actor = 0;
  /// Attribute the event touches (view-side name), when applicable.
  std::string attr;
  /// Kind-specific argument: row ordinal, run microseconds, drop permille,
  /// or crash flags (bit 0 = torn WAL tail).
  int64_t arg = 0;
  /// Unique deterministic payload token written into the touched cell.
  std::string token;

  Json ToJson() const;
};

struct WorkloadOptions {
  uint64_t seed = 1;
  /// Number of generated action events (each is followed by a short kRun
  /// gap, and the schedule ends with closers + a settling run).
  size_t events = 48;
  /// Fraction of kViewUpdate events that deliberately target an attribute
  /// the actor may NOT write, exercising the denial path mid-cascade.
  double illegal_write_fraction = 0.2;
  /// Relative weights of the adversity events (0 disables one).
  double crash_weight = 1.0;
  double partition_weight = 1.0;
  double storm_weight = 1.0;
  double permission_weight = 2.0;
};

/// A generated event schedule. Canonical JSON bytes (ToJson().Dump()) are
/// the replay/shrink contract.
struct Schedule {
  WorkloadOptions options;
  std::vector<WorkloadEvent> events;

  Json ToJson() const;
};

/// Expands (spec, options) into a schedule. Pure and deterministic: the
/// generator tracks open revokes/partitions/crashes/storms symbolically, so
/// every emitted event is legal at its position without consulting a live
/// network.
Schedule GenerateSchedule(const NetworkSpec& spec,
                          const WorkloadOptions& options);

/// Replays a schedule (or a prefix of it) against a live scenario.
class WorkloadRunner {
 public:
  WorkloadRunner(GeneratedScenario* scenario, const Schedule* schedule)
      : scenario_(scenario), schedule_(schedule) {}

  /// Runs the first `prefix` events (SIZE_MAX = all). Events whose
  /// precondition no longer holds at runtime (actor down, no row to
  /// delete, crash target not idle) are counted as skipped, not errors;
  /// any other synchronous failure aborts the run.
  Status RunPrefix(size_t prefix);

  /// Closes the run so the convergence oracles apply: calms storms, heals
  /// partitions, restarts crashed peers, re-grants open revokes, then
  /// sweeps every table that a denied cascade left stale until all views
  /// agree.
  Status Finish();

  size_t executed() const { return executed_; }
  size_t skipped() const { return skipped_; }

 private:
  Status RunEvent(const WorkloadEvent& event);
  Status SweepStaleViews();

  GeneratedScenario* scenario_;
  const Schedule* schedule_;
  size_t executed_ = 0;
  size_t skipped_ = 0;
  /// (table index, attr) revokes currently open, re-granted by Finish().
  std::vector<std::pair<size_t, std::string>> open_revokes_;
};

/// One end-to-end soak run: generate the network and schedule from the two
/// seeds, replay `prefix` events (SIZE_MAX = all), finish, and check every
/// oracle (convergence, audit gaplessness). Fills `report` with the final
/// state fingerprint either way.
struct SoakReport {
  std::string fingerprint;
  /// GeneratedScenario::LaneInvariantFingerprint() — compares byte-equal
  /// across lane counts (the lanes={1,4} determinism leg), where the full
  /// fingerprint only compares across worker pool sizes.
  std::string lane_invariant_fingerprint;
  size_t executed = 0;
  size_t skipped = 0;
  uint64_t chain_height = 0;
};

Status RunGeneratedSoak(const GenOptions& gen_options,
                        const WorkloadOptions& workload_options,
                        size_t prefix, SoakReport* report);

/// Shrinks a failing schedule to the smallest failing prefix by binary
/// search, assuming failure monotonicity in practice (a prefix that fails
/// keeps failing with more events appended — true for the deterministic
/// replay). `run` executes a prefix and returns its oracle status; `total`
/// is the full schedule length. Returns the smallest failing prefix length
/// found and stores its failure in `*failure`.
size_t ShrinkToMinimalFailingPrefix(
    const std::function<Status(size_t prefix)>& run, size_t total,
    Status* failure);

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_WORKLOAD_H_
