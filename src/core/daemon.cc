#include "core/daemon.h"

#include <utility>

#include "bx/lens_factory.h"
#include "chain/transaction.h"
#include "common/strings.h"
#include "contracts/host.h"
#include "core/audit.h"
#include "core/scenario.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::core {

using medical::kAddress;
using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kModeOfAction;
using medical::kPatientId;
using relational::Table;
using relational::Value;

namespace {

constexpr const char* kRoleNames[] = {"doctor", "patient", "researcher",
                                      "observer"};

}  // namespace

Result<ClinicRole> ParseClinicRole(std::string_view name) {
  for (size_t i = 0; i < 4; ++i) {
    if (name == kRoleNames[i]) return static_cast<ClinicRole>(i);
  }
  return Status::InvalidArgument(StrCat("unknown clinic role '", name, "'"));
}

std::string ClinicRoleName(ClinicRole role) {
  return kRoleNames[static_cast<size_t>(role)];
}

size_t ClinicDaemon::NodeIndexFor(ClinicRole role) {
  return static_cast<size_t>(role);
}

std::vector<std::string> ClinicDaemon::LocalIds(ClinicRole role) {
  std::vector<std::string> ids{
      runtime::NodeDaemon::NodeIdFor(NodeIndexFor(role))};
  if (role != ClinicRole::kObserver) ids.push_back(ClinicRoleName(role));
  return ids;
}

ClinicDaemon::ClinicDaemon(const ClinicDaemonOptions& options)
    : options_(options) {}

ClinicDaemon::~ClinicDaemon() { *alive_ = false; }

Result<std::unique_ptr<ClinicDaemon>> ClinicDaemon::Create(
    const ClinicDaemonOptions& options, net::Scheduler* scheduler,
    net::Network* network) {
  auto daemon = std::unique_ptr<ClinicDaemon>(new ClinicDaemon(options));
  MEDSYNC_RETURN_IF_ERROR(daemon->Build(scheduler, network));
  return daemon;
}

Status ClinicDaemon::Build(net::Scheduler* scheduler, net::Network* network) {
  scheduler_ = scheduler;
  metrics_ = std::make_unique<metrics::MetricsRegistry>();

  runtime::NodeDaemonOptions node_options;
  node_options.node_index = NodeIndexFor(options_.role);
  node_options.authority_count = options_.chain_node_count;
  node_options.block_interval = options_.block_interval;
  node_options.genesis_timestamp = options_.genesis_timestamp;
  node_options.metrics = metrics_.get();
  node_daemon_ = std::make_unique<runtime::NodeDaemon>(node_options, scheduler,
                                                       network);

  // The symmetric test crypto (crypto/keys.h) verifies signatures through a
  // process-local key registry that fills in as KeyPairs are constructed.
  // The one-process simulator gets every identity registered for free; a
  // multi-process deployment must materialize the closed cast explicitly,
  // or a process that hosts no peer (the observer) rejects every block
  // carrying a peer transaction as a bad signature.
  for (const char* name : {"doctor", "patient", "researcher"}) {
    crypto::KeyPair materialized = crypto::KeyPair::FromSeed(name);
    (void)materialized;
  }

  // Every process derives the contract address from the deployment rule
  // (doctor's address, nonce 0) instead of hearing it from the doctor — the
  // chain itself is the only rendezvous a deployment needs.
  doctor_address_ = crypto::KeyPair::FromSeed("doctor").address();
  chain::Transaction deploy;
  deploy.from = doctor_address_;
  deploy.nonce = 0;
  contract_ = contracts::ContractHost::DeploymentAddress(deploy);

  if (options_.role != ClinicRole::kObserver) {
    PeerConfig config;
    config.name = ClinicRoleName(options_.role);
    peer_ = std::make_unique<Peer>(config, scheduler, network,
                                   &node_daemon_->node());
    peer_->SetMetrics(metrics_.get());
  }

  switch (options_.role) {
    case ClinicRole::kDoctor:
      phase_ = Phase::kWaitUpstream;
      break;
    case ClinicRole::kResearcher:
      phase_ = Phase::kWaitRegistration;
      break;
    default:
      phase_ = Phase::kWaitConverged;
      break;
  }
  return Status::OK();
}

void ClinicDaemon::Start() {
  if (started_) return;
  started_ = true;
  started_at_ = scheduler_->Now();
  node_daemon_->Start();
  if (peer_ != nullptr) {
    peer_->Start();
    if (Status status = SetupRoleData(); !status.ok()) {
      Fail(std::move(status));
      return;
    }
  }
  ScheduleTick();
}

Status ClinicDaemon::SetupRoleData() {
  Peer& peer = *peer_;
  for (ClinicRole other : {ClinicRole::kDoctor, ClinicRole::kPatient,
                           ClinicRole::kResearcher}) {
    if (other == options_.role) continue;
    const std::string name = ClinicRoleName(other);
    peer.AddKnownPeer(name, crypto::KeyPair::FromSeed(name).address());
  }

  // The Fig. 1 distribution, projected identically in every process so the
  // agreed initial shared contents line up without any data exchange.
  Table full = medical::MakeFig1FullRecords();
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d1, relational::Project(
                    full,
                    {kPatientId, kMedicationName, kClinicalData, kAddress,
                     kDosage},
                    {kPatientId}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d2,
      relational::Project(full,
                          {kMedicationName, kMechanismOfAction, kModeOfAction},
                          {kMedicationName}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d3, relational::Project(
                    full,
                    {kPatientId, kMedicationName, kClinicalData,
                     kMechanismOfAction, kDosage},
                    {kPatientId}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d13, relational::Project(
                     d1, {kPatientId, kMedicationName, kClinicalData, kDosage},
                     {kPatientId}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d32, relational::Project(d3, {kMedicationName, kMechanismOfAction},
                                     {kMedicationName}));

  bx::LensPtr lens_pd = bx::MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  bx::LensPtr lens_dr = bx::MakeProjectLens(
      {kMedicationName, kMechanismOfAction}, {kMedicationName});

  auto install = [&peer](const std::string& name,
                         const Table& table) -> Status {
    MEDSYNC_RETURN_IF_ERROR(peer.database().CreateTable(name, table.schema()));
    return peer.database().ReplaceTable(name, table);
  };

  switch (options_.role) {
    case ClinicRole::kDoctor: {
      MEDSYNC_RETURN_IF_ERROR(install("D3", d3));
      MEDSYNC_RETURN_IF_ERROR(install("D31", d13));
      MEDSYNC_RETURN_IF_ERROR(install("D32", d32));
      MEDSYNC_ASSIGN_OR_RETURN(crypto::Address deployed,
                               peer.DeployMetadataContract());
      if (deployed.ToHex() != contract_.ToHex()) {
        return Status::Internal(
            StrCat("deployed contract address ", deployed.ToHex(),
                   " != derived ", contract_.ToHex(),
                   " (deploy must be the doctor's first transaction)"));
      }
      SharedTableConfig pd{ClinicScenario::kPatientDoctorTable, "D3", "D31",
                           lens_pd, contract_};
      SharedTableConfig dr{ClinicScenario::kDoctorResearcherTable, "D3",
                           "D32", lens_dr, contract_};
      MEDSYNC_RETURN_IF_ERROR(peer.AdoptSharedTable(pd));
      MEDSYNC_RETURN_IF_ERROR(peer.AdoptSharedTable(dr));
      const crypto::Address patient =
          crypto::KeyPair::FromSeed("patient").address();
      const crypto::Address researcher =
          crypto::KeyPair::FromSeed("researcher").address();
      const crypto::Address& doctor = peer.address();
      // Fig. 3 permission matrix (same terms as ClinicScenario).
      MEDSYNC_RETURN_IF_ERROR(
          peer.RegisterSharedTableOnChain(
                  pd, {patient, doctor},
                  {{kMedicationName, {doctor}},
                   {kDosage, {doctor}},
                   {kClinicalData, {patient, doctor}}},
                  {doctor}, doctor)
              .status());
      MEDSYNC_RETURN_IF_ERROR(
          peer.RegisterSharedTableOnChain(
                  dr, {doctor, researcher},
                  {{kMedicationName, {doctor, researcher}},
                   {kMechanismOfAction, {researcher}}},
                  {doctor}, researcher)
              .status());
      shared_views_ = {{ClinicScenario::kPatientDoctorTable, "D31"},
                       {ClinicScenario::kDoctorResearcherTable, "D32"}};
      break;
    }
    case ClinicRole::kPatient: {
      MEDSYNC_RETURN_IF_ERROR(install("D1", d1));
      MEDSYNC_RETURN_IF_ERROR(install("D13", d13));
      SharedTableConfig config{ClinicScenario::kPatientDoctorTable, "D1",
                               "D13", lens_pd, contract_};
      MEDSYNC_RETURN_IF_ERROR(peer.AdoptSharedTable(config));
      shared_views_ = {{ClinicScenario::kPatientDoctorTable, "D13"}};
      break;
    }
    case ClinicRole::kResearcher: {
      MEDSYNC_RETURN_IF_ERROR(install("D2", d2));
      MEDSYNC_RETURN_IF_ERROR(install("D23", d32));
      SharedTableConfig config{ClinicScenario::kDoctorResearcherTable, "D2",
                               "D23", lens_dr, contract_};
      MEDSYNC_RETURN_IF_ERROR(peer.AdoptSharedTable(config));
      shared_views_ = {{ClinicScenario::kDoctorResearcherTable, "D23"}};
      break;
    }
    case ClinicRole::kObserver:
      break;
  }
  return Status::OK();
}

void ClinicDaemon::ScheduleTick() {
  scheduler_->Schedule(options_.tick_interval, [this, alive = alive_] {
    if (!*alive) return;
    Tick();
  });
}

void ClinicDaemon::Tick() {
  if (converged_ || failed()) return;
  if (scheduler_->Now() - started_at_ >= options_.timeout) {
    Fail(Status::Timeout(StrCat(ClinicRoleName(options_.role),
                                " did not converge within timeout")));
    return;
  }

  switch (phase_) {
    case Phase::kWaitRegistration:
      // Researcher, Fig. 5 steps 1-6: fire once the registration is
      // visible on its own node.
      if (EntryAtVersion(ClinicScenario::kDoctorResearcherTable, 1, true)) {
        acted_at_ = scheduler_->Now();
        Status status = peer_->UpdateSourceAndPropagate(
            "D2", [](relational::Database* db) {
              return db->UpdateAttribute("D2", {Value::String("Ibuprofen")},
                                         kMechanismOfAction,
                                         Value::String("MeA1-new"));
            });
        if (!status.ok()) {
          Fail(std::move(status));
          return;
        }
        phase_ = Phase::kWaitConverged;
      }
      break;
    case Phase::kWaitUpstream:
      // Doctor, Fig. 5 steps 7-11: fire once the researcher's update has
      // committed AND this peer has applied + acked it (pending_acks empty,
      // no fetch in flight), so the two cascades never interleave.
      if (EntryAtVersion(ClinicScenario::kDoctorResearcherTable, 2, true) &&
          !peer_->HasPendingWork()) {
        acted_at_ = scheduler_->Now();
        Status status = peer_->UpdateSharedAttribute(
            ClinicScenario::kPatientDoctorTable, {Value::Int(188)}, kDosage,
            Value::String("one tablet every 6h"));
        if (!status.ok()) {
          Fail(std::move(status));
          return;
        }
        phase_ = Phase::kWaitConverged;
      }
      break;
    case Phase::kWaitConverged:
      break;
  }

  if (phase_ == Phase::kWaitConverged && CheckConverged()) {
    converged_ = true;
    converged_at_ = scheduler_->Now();
    return;
  }
  ScheduleTick();
}

Result<Json> ClinicDaemon::Entry(const std::string& table_id) {
  Json params = Json::MakeObject();
  params.Set("table_id", table_id);
  return node_daemon_->node().Query(contract_, "get_entry", params,
                                    doctor_address_);
}

bool ClinicDaemon::EntryAtVersion(const std::string& table_id, int64_t version,
                                  bool require_no_pending_acks) {
  Result<Json> entry = Entry(table_id);
  if (!entry.ok()) return false;
  Result<int64_t> got = entry->GetInt("version");
  if (!got.ok() || *got < version) return false;
  if (require_no_pending_acks && entry->At("pending_acks").size() > 0) {
    return false;
  }
  return true;
}

bool ClinicDaemon::CheckConverged() {
  if (!EntryAtVersion(ClinicScenario::kPatientDoctorTable, 2, true)) {
    return false;
  }
  if (!EntryAtVersion(ClinicScenario::kDoctorResearcherTable, 2, true)) {
    return false;
  }
  if (peer_ != nullptr && peer_->HasPendingWork()) return false;
  return node_daemon_->node().mempool_total_size() == 0;
}

void ClinicDaemon::Fail(Status status) {
  if (failure_.ok()) failure_ = std::move(status);
}

Json ClinicDaemon::Report() {
  runtime::ChainNode& node = node_daemon_->node();

  Json entries = Json::MakeObject();
  Json audits = Json::MakeObject();
  for (const char* table_id : {ClinicScenario::kPatientDoctorTable,
                               ClinicScenario::kDoctorResearcherTable}) {
    Json summary = Json::MakeObject();
    Result<Json> entry = Entry(table_id);
    if (entry.ok()) {
      summary.Set("version", entry->At("version"));
      summary.Set("content_digest", entry->At("content_digest"));
      summary.Set("pending_acks",
                  static_cast<int64_t>(entry->At("pending_acks").size()));
    }
    entries.Set(table_id, std::move(summary));

    Json trail = Json::MakeArray();
    for (const AuditRecord& record :
         BuildAuditTrail(node.blockchain(), node.host(), table_id)) {
      Json row = Json::MakeObject();
      row.Set("method", record.method);
      row.Set("actor", record.actor);
      row.Set("kind", record.kind);
      Json attributes = Json::MakeArray();
      for (const std::string& attribute : record.attributes) {
        attributes.Append(attribute);
      }
      row.Set("attributes", std::move(attributes));
      row.Set("digest", record.digest);
      row.Set("committed", record.committed);
      row.Set("denial_reason", record.denial_reason);
      trail.Append(std::move(row));
    }
    audits.Set(table_id, std::move(trail));
  }

  Json digests = Json::MakeObject();
  for (const auto& [table_id, view_table] : shared_views_) {
    Result<const Table*> table = peer_->database().GetTable(view_table);
    digests.Set(table_id, table.ok() ? (*table)->ContentDigest() : "");
  }

  // The compare block excludes tx ids, block heights and timestamps: those
  // legitimately differ between simulated and wall-clock runs, while
  // everything here is protocol content that must not.
  Json compare = Json::MakeObject();
  compare.Set("entries", std::move(entries));
  compare.Set("audit", std::move(audits));
  compare.Set("view_digests", std::move(digests));

  Json info = Json::MakeObject();
  info.Set("role", ClinicRoleName(options_.role));
  info.Set("converged", converged_);
  info.Set("failed", failed());
  if (failed()) info.Set("failure", failure_.ToString());
  info.Set("height", static_cast<int64_t>(node.blockchain().height()));
  info.Set("started_at", static_cast<int64_t>(started_at_));
  info.Set("acted_at", static_cast<int64_t>(acted_at_));
  info.Set("converged_at", static_cast<int64_t>(converged_at_));
  if (peer_ != nullptr) {
    const Peer::Stats& stats = peer_->stats();
    Json peer_stats = Json::MakeObject();
    peer_stats.Set("updates_proposed",
                   static_cast<int64_t>(stats.updates_proposed));
    peer_stats.Set("updates_committed",
                   static_cast<int64_t>(stats.updates_committed));
    peer_stats.Set("updates_denied",
                   static_cast<int64_t>(stats.updates_denied));
    peer_stats.Set("fetches_served",
                   static_cast<int64_t>(stats.fetches_served));
    peer_stats.Set("fetches_applied",
                   static_cast<int64_t>(stats.fetches_applied));
    peer_stats.Set("acks_sent", static_cast<int64_t>(stats.acks_sent));
    peer_stats.Set("digest_mismatches",
                   static_cast<int64_t>(stats.digest_mismatches));
    info.Set("peer", std::move(peer_stats));
  }

  Json report = Json::MakeObject();
  report.Set("compare", std::move(compare));
  report.Set("info", std::move(info));
  return report;
}

}  // namespace medsync::core
