#ifndef MEDSYNC_CORE_AUDIT_H_
#define MEDSYNC_CORE_AUDIT_H_

#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "crypto/merkle.h"
#include "contracts/host.h"

namespace medsync::core {

/// One reconstructed entry of a shared table's update history.
struct AuditRecord {
  uint64_t block_height = 0;
  Micros block_timestamp = 0;
  std::string tx_id;       // hex
  std::string actor;       // hex address
  std::string method;      // request_update / ack_update / ...
  std::string kind;        // update/insert/delete/replace (request_update)
  std::vector<std::string> attributes;
  std::string digest;
  bool committed = false;  // receipt.ok
  std::string denial_reason;
};

/// Rebuilds the full, tamper-evident history of `table_id` by walking the
/// canonical chain and pairing each metadata-contract transaction with its
/// receipt — "blockchain properties such as immutability, auditability and
/// transparency enable nodes to check and review update history on shared
/// data" (Section III-B). Includes DENIED attempts (failed receipts), which
/// is exactly what a compliance audit wants to see.
std::vector<AuditRecord> BuildAuditTrail(const chain::Blockchain& chain,
                                         const contracts::ContractHost& host,
                                         const std::string& table_id);

/// Renders the trail as an aligned text report.
std::string RenderAuditTrail(const std::vector<AuditRecord>& trail);

/// A self-contained, light-client-verifiable proof that a transaction is
/// included in the chain: the transaction's position, its block's header,
/// and a Merkle inclusion path to the header's committed root. An auditor
/// holding only the block headers can check it without the block bodies.
struct InclusionProof {
  std::string tx_id;  // hex
  chain::BlockHeader header;
  crypto::MerkleProof merkle;
};

/// Builds the inclusion proof for `tx_id_hex` on the canonical chain.
Result<InclusionProof> ProveTransactionInclusion(
    const chain::Blockchain& chain, const std::string& tx_id_hex);

/// Verifies a proof: the Merkle path must connect the transaction id to
/// the header's merkle_root. (Header authenticity — its hash appearing on
/// the chain the auditor trusts — is the caller's anchor.)
bool VerifyTransactionInclusion(const InclusionProof& proof);

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_AUDIT_H_
