#include "core/sync_manager.h"

#include "bx/laws.h"
#include "common/strings.h"
#include "common/threading/thread_pool.h"
#include "relational/delta.h"

namespace medsync::core {

using relational::Table;
using relational::TableDelta;

SyncManager::SyncManager(relational::Database* database,
                         DependencyStrategy strategy)
    : database_(database), strategy_(strategy) {}

void SyncManager::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    gets_executed_counter_ = gets_skipped_counter_ = puts_counter_ = nullptr;
    delta_pushes_counter_ = full_fallbacks_counter_ = nullptr;
    affected_views_ = source_delta_rows_ = view_delta_rows_ = nullptr;
    return;
  }
  gets_executed_counter_ = registry->GetCounter("sync.gets_executed");
  gets_skipped_counter_ = registry->GetCounter("sync.gets_skipped");
  puts_counter_ = registry->GetCounter("sync.puts");
  delta_pushes_counter_ = registry->GetCounter("sync.delta_pushes");
  full_fallbacks_counter_ = registry->GetCounter("sync.full_fallbacks");
  affected_views_ = registry->GetHistogram("sync.affected_views");
  source_delta_rows_ = registry->GetHistogram("sync.source_delta_rows");
  view_delta_rows_ = registry->GetHistogram("sync.view_delta_rows");
}

Status SyncManager::RegisterView(const std::string& table_id,
                                 const std::string& source_table,
                                 const std::string& view_table,
                                 bx::LensPtr lens) {
  if (lens == nullptr) {
    return Status::InvalidArgument("lens must not be null");
  }
  if (views_.count(table_id) > 0) {
    return Status::AlreadyExists(
        StrCat("view '", table_id, "' already registered"));
  }
  MEDSYNC_ASSIGN_OR_RETURN(const Table* source,
                           database_->GetTable(source_table));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* view, database_->GetTable(view_table));
  MEDSYNC_ASSIGN_OR_RETURN(relational::Schema expected,
                           lens->ViewSchema(source->schema()));
  if (view->schema() != expected) {
    return Status::InvalidArgument(
        StrCat("view table '", view_table,
               "' schema does not match the lens view schema"));
  }
  views_.emplace(table_id, ViewBinding{table_id, source_table, view_table,
                                       std::move(lens)});
  return Status::OK();
}

bool SyncManager::HasView(const std::string& table_id) const {
  return views_.count(table_id) > 0;
}

std::vector<std::string> SyncManager::ViewIds() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [id, binding] : views_) out.push_back(id);
  return out;
}

Result<const SyncManager::ViewBinding*> SyncManager::FindBinding(
    const std::string& table_id) const {
  auto it = views_.find(table_id);
  if (it == views_.end()) {
    return Status::NotFound(
        StrCat("no registered view '", table_id, "'"));
  }
  return &it->second;
}

Status SyncManager::SetViewStale(const std::string& table_id, bool stale) {
  auto it = views_.find(table_id);
  if (it == views_.end()) {
    return Status::NotFound(
        StrCat("no registered view '", table_id, "'"));
  }
  it->second.stale = stale;
  return Status::OK();
}

Result<Table> SyncManager::DeriveView(const std::string& table_id) const {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* source,
                           database_->GetTable(binding->source_table));
  if (check_bx_laws_) {
    MEDSYNC_RETURN_IF_ERROR(
        bx::CheckGetPut(*binding->lens, *source)
            .WithPrefix(StrCat("BX law oracle: GetPut violated deriving '",
                               table_id, "'")));
  }
  return binding->lens->Get(*source);
}

Status SyncManager::MaterializeView(const std::string& table_id) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(Table derived, DeriveView(table_id));
  ++gets_executed_;
  metrics::Inc(gets_executed_counter_);
  return database_->ReplaceTable(binding->view_table, derived);
}

Result<bx::SourceChange> SyncManager::PutViewIntoSource(
    const std::string& table_id) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(Table source,
                           database_->Snapshot(binding->source_table));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* view,
                           database_->GetTable(binding->view_table));
  MEDSYNC_ASSIGN_OR_RETURN(Table updated, binding->lens->Put(source, *view));
  if (check_bx_laws_) {
    // PutGet on the exact pair being committed: Get(Put(S, V)) must
    // reproduce V, otherwise the put silently lost part of the edit.
    // Rejection is impossible here (the Put above already succeeded), so
    // rejected=nullptr treats it as a failure.
    MEDSYNC_RETURN_IF_ERROR(
        bx::CheckPutGet(*binding->lens, source, *view, /*rejected=*/nullptr)
            .WithPrefix(StrCat("BX law oracle: PutGet violated putting '",
                               table_id, "'")));
  }
  if (maintenance_ == ViewMaintenance::kIncremental) {
    // Commit the put as a delta: the WAL records O(|delta|) instead of
    // serializing the whole source table.
    MEDSYNC_ASSIGN_OR_RETURN(TableDelta delta,
                             relational::ComputeDelta(source, updated));
    MEDSYNC_RETURN_IF_ERROR(
        database_->ApplyTableDelta(binding->source_table, delta));
    metrics::Inc(puts_counter_);
    return bx::SourceChangeFromDelta(source, delta);
  }
  MEDSYNC_RETURN_IF_ERROR(
      database_->ReplaceTable(binding->source_table, updated));
  metrics::Inc(puts_counter_);
  return bx::AnalyzeSourceChange(source, updated);
}

namespace {

/// Outcome of inspecting one sibling view; produced concurrently, merged
/// serially in table-id order.
struct SiblingScan {
  Status status;
  bool get_skipped = false;
  bool get_executed = false;
  bool delta_pushed = false;
  bool full_fallback = false;
  std::optional<ViewRefresh> refresh;
};

}  // namespace

Result<std::vector<ViewRefresh>> SyncManager::FindAffectedViews(
    const std::string& source_table, const Table& before,
    const std::string& exclude_table_id) {
  MEDSYNC_ASSIGN_OR_RETURN(const Table* after_ptr,
                           database_->GetTable(source_table));
  const Table& after = *after_ptr;
  // One delta for the whole dependency check; every sibling translates it
  // (incremental mode) or falls back to its own get.
  MEDSYNC_ASSIGN_OR_RETURN(TableDelta src_delta,
                           relational::ComputeDelta(before, after));
  MEDSYNC_ASSIGN_OR_RETURN(bx::SourceChange change,
                           bx::SourceChangeFromDelta(before, src_delta));

  // Candidate siblings, in views_ (table-id) order.
  std::vector<const ViewBinding*> candidates;
  for (const auto& [id, binding] : views_) {
    if (id == exclude_table_id) continue;
    if (binding.source_table != source_table) continue;
    candidates.push_back(&binding);
  }

  // The per-sibling work — overlap analysis, delta push or lens get, diff
  // against the materialization — only READS the database and the
  // immutable lenses, so the scans run concurrently, one result slot
  // each. Merging (and all counters) happens after the join, in candidate
  // order, so the refresh list is deterministic regardless of pool size.
  const DependencyStrategy strategy = strategy_;
  const ViewMaintenance maintenance = maintenance_;
  std::vector<SiblingScan> scans(candidates.size());
  auto scan_one = [this, &after, &before, &src_delta, &change, &candidates,
                   &scans, strategy, maintenance](size_t index) {
    const ViewBinding& binding = *candidates[index];
    SiblingScan& out = scans[index];
    if (strategy == DependencyStrategy::kAnalyzeChange) {
      Result<bool> may_affect =
          bx::ChangeMayAffectView(*binding.lens, after.schema(), change);
      if (!may_affect.ok()) {
        out.status = may_affect.status();
        return;
      }
      if (!*may_affect) {
        out.get_skipped = true;
        return;
      }
    }
    Result<const Table*> current = database_->GetTable(binding.view_table);
    if (!current.ok()) {
      out.status = current.status();
      return;
    }

    // Both paths produce the refresh from the VIEW delta, so the contract
    // sees identical attribute sets either way.
    auto emit_refresh = [&](TableDelta vd, Table new_view) {
      Result<bx::SourceChange> analysis =
          bx::SourceChangeFromDelta(**current, vd);
      if (!analysis.ok()) {
        out.status = analysis.status();
        return;
      }
      Result<std::set<std::string>> written =
          bx::WrittenAttributes(**current, vd);
      if (!written.ok()) {
        out.status = written.status();
        return;
      }
      ViewRefresh refresh;
      refresh.table_id = binding.table_id;
      refresh.new_view = std::move(new_view);
      refresh.delta = std::move(vd);
      refresh.changed_attributes.assign(analysis->changed_attributes.begin(),
                                        analysis->changed_attributes.end());
      refresh.written_attributes.assign(written->begin(), written->end());
      refresh.membership_changed = analysis->membership_changed;
      out.refresh = std::move(refresh);
    };

    if (maintenance == ViewMaintenance::kIncremental) {
      // A stale materialization (it missed an earlier blocked propagation)
      // must not receive a pushed delta — the delta would preserve the
      // stale rows — so it goes straight to the healing full get below.
      if (!binding.stale) {
        Result<TableDelta> pushed = binding.lens->PushDelta(before, src_delta);
        if (pushed.ok()) {
          if (pushed->empty()) {
            // The change is invisible to this view.
            out.delta_pushed = true;
            return;
          }
          Table new_view = **current;
          Status applied = relational::ApplyDelta(*pushed, &new_view);
          if (applied.ok()) {
            out.delta_pushed = true;
            emit_refresh(std::move(*pushed), std::move(new_view));
            return;
          }
          // The materialization disagrees with the pushed delta (it lagged
          // behind an earlier blocked propagation): heal via the full path.
        } else if (!pushed.status().IsUnimplemented()) {
          out.status = pushed.status();
          return;
        }
      }
      out.full_fallback = true;
    }

    if (check_bx_laws_) {
      Status law = bx::CheckGetPut(*binding.lens, after);
      if (!law.ok()) {
        out.status = law.WithPrefix(
            StrCat("BX law oracle: GetPut violated rederiving '",
                   binding.table_id, "'"));
        return;
      }
    }
    Result<Table> derived = binding.lens->Get(after);
    if (!derived.ok()) {
      out.status = derived.status();
      return;
    }
    out.get_executed = true;
    Result<TableDelta> vd = relational::ComputeDelta(**current, *derived);
    if (!vd.ok()) {
      out.status = vd.status();
      return;
    }
    if (vd->empty()) return;
    emit_refresh(std::move(*vd), std::move(*derived));
  };
  if (pool_ != nullptr && candidates.size() > 1) {
    threading::TaskGroup group(pool_);
    for (size_t i = 0; i < candidates.size(); ++i) {
      group.Run([&scan_one, i] { scan_one(i); });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) scan_one(i);
  }

  std::vector<ViewRefresh> refreshes;
  for (SiblingScan& scan : scans) {
    if (scan.get_skipped) {
      ++gets_skipped_;
      metrics::Inc(gets_skipped_counter_);
    }
    if (scan.get_executed) {
      ++gets_executed_;
      metrics::Inc(gets_executed_counter_);
    }
    if (scan.delta_pushed) {
      ++delta_pushes_;
      metrics::Inc(delta_pushes_counter_);
    }
    if (scan.full_fallback) {
      ++full_fallbacks_;
      metrics::Inc(full_fallbacks_counter_);
    }
    if (!scan.status.ok()) return scan.status;
    if (scan.refresh.has_value()) {
      metrics::Observe(view_delta_rows_, scan.refresh->delta.size());
      refreshes.push_back(std::move(*scan.refresh));
    }
  }
  metrics::Observe(affected_views_, refreshes.size());
  metrics::Observe(source_delta_rows_, src_delta.size());
  return refreshes;
}

Status SyncManager::ApplyRefresh(const ViewRefresh& refresh) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding,
                           FindBinding(refresh.table_id));
  if (maintenance_ == ViewMaintenance::kIncremental) {
    if (refresh.delta.empty()) return Status::OK();
    return database_->ApplyTableDelta(binding->view_table, refresh.delta);
  }
  return database_->ReplaceTable(binding->view_table, refresh.new_view);
}

Status SyncManager::ApplyViewContent(const std::string& table_id,
                                     const Table& content) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  if (maintenance_ == ViewMaintenance::kIncremental) {
    MEDSYNC_ASSIGN_OR_RETURN(const Table* current,
                             database_->GetTable(binding->view_table));
    MEDSYNC_ASSIGN_OR_RETURN(TableDelta delta,
                             relational::ComputeDelta(*current, content));
    // ApplyTableDelta skips the WAL for an empty delta.
    return database_->ApplyTableDelta(binding->view_table, delta);
  }
  return database_->ReplaceTable(binding->view_table, content);
}

}  // namespace medsync::core
