#include "core/sync_manager.h"

#include "common/strings.h"
#include "common/threading/thread_pool.h"
#include "relational/delta.h"

namespace medsync::core {

using relational::Table;

SyncManager::SyncManager(relational::Database* database,
                         DependencyStrategy strategy)
    : database_(database), strategy_(strategy) {}

void SyncManager::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    gets_executed_counter_ = gets_skipped_counter_ = puts_counter_ = nullptr;
    affected_views_ = nullptr;
    return;
  }
  gets_executed_counter_ = registry->GetCounter("sync.gets_executed");
  gets_skipped_counter_ = registry->GetCounter("sync.gets_skipped");
  puts_counter_ = registry->GetCounter("sync.puts");
  affected_views_ = registry->GetHistogram("sync.affected_views");
}

Status SyncManager::RegisterView(const std::string& table_id,
                                 const std::string& source_table,
                                 const std::string& view_table,
                                 bx::LensPtr lens) {
  if (lens == nullptr) {
    return Status::InvalidArgument("lens must not be null");
  }
  if (views_.count(table_id) > 0) {
    return Status::AlreadyExists(
        StrCat("view '", table_id, "' already registered"));
  }
  MEDSYNC_ASSIGN_OR_RETURN(const Table* source,
                           database_->GetTable(source_table));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* view, database_->GetTable(view_table));
  MEDSYNC_ASSIGN_OR_RETURN(relational::Schema expected,
                           lens->ViewSchema(source->schema()));
  if (view->schema() != expected) {
    return Status::InvalidArgument(
        StrCat("view table '", view_table,
               "' schema does not match the lens view schema"));
  }
  views_.emplace(table_id, ViewBinding{table_id, source_table, view_table,
                                       std::move(lens)});
  return Status::OK();
}

bool SyncManager::HasView(const std::string& table_id) const {
  return views_.count(table_id) > 0;
}

std::vector<std::string> SyncManager::ViewIds() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [id, binding] : views_) out.push_back(id);
  return out;
}

Result<const SyncManager::ViewBinding*> SyncManager::FindBinding(
    const std::string& table_id) const {
  auto it = views_.find(table_id);
  if (it == views_.end()) {
    return Status::NotFound(
        StrCat("no registered view '", table_id, "'"));
  }
  return &it->second;
}

Result<Table> SyncManager::DeriveView(const std::string& table_id) const {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* source,
                           database_->GetTable(binding->source_table));
  return binding->lens->Get(*source);
}

Status SyncManager::MaterializeView(const std::string& table_id) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(Table derived, DeriveView(table_id));
  ++gets_executed_;
  metrics::Inc(gets_executed_counter_);
  return database_->ReplaceTable(binding->view_table, derived);
}

Result<bx::SourceChange> SyncManager::PutViewIntoSource(
    const std::string& table_id) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  MEDSYNC_ASSIGN_OR_RETURN(Table source,
                           database_->Snapshot(binding->source_table));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* view,
                           database_->GetTable(binding->view_table));
  MEDSYNC_ASSIGN_OR_RETURN(Table updated, binding->lens->Put(source, *view));
  MEDSYNC_RETURN_IF_ERROR(
      database_->ReplaceTable(binding->source_table, updated));
  metrics::Inc(puts_counter_);
  return bx::AnalyzeSourceChange(source, updated);
}

namespace {

/// Outcome of inspecting one sibling view; produced concurrently, merged
/// serially in table-id order.
struct SiblingScan {
  Status status;
  bool get_skipped = false;
  bool get_executed = false;
  std::optional<ViewRefresh> refresh;
};

}  // namespace

Result<std::vector<ViewRefresh>> SyncManager::FindAffectedViews(
    const std::string& source_table, const Table& before,
    const std::string& exclude_table_id) {
  MEDSYNC_ASSIGN_OR_RETURN(const Table* after_ptr,
                           database_->GetTable(source_table));
  const Table& after = *after_ptr;
  MEDSYNC_ASSIGN_OR_RETURN(bx::SourceChange change,
                           bx::AnalyzeSourceChange(before, after));

  // Candidate siblings, in views_ (table-id) order.
  std::vector<const ViewBinding*> candidates;
  for (const auto& [id, binding] : views_) {
    if (id == exclude_table_id) continue;
    if (binding.source_table != source_table) continue;
    candidates.push_back(&binding);
  }

  // The per-sibling work — overlap analysis, lens get, diff against the
  // materialization — only READS the database and the immutable lenses, so
  // the scans run concurrently, one result slot each. Merging (and the
  // skip/execute counters) happens after the join, in candidate order, so
  // the refresh list is deterministic regardless of pool size.
  const DependencyStrategy strategy = strategy_;
  std::vector<SiblingScan> scans(candidates.size());
  auto scan_one = [this, &after, &change, &candidates, &scans,
                   strategy](size_t index) {
    const ViewBinding& binding = *candidates[index];
    SiblingScan& out = scans[index];
    if (strategy == DependencyStrategy::kAnalyzeChange) {
      Result<bool> may_affect =
          bx::ChangeMayAffectView(*binding.lens, after.schema(), change);
      if (!may_affect.ok()) {
        out.status = may_affect.status();
        return;
      }
      if (!*may_affect) {
        out.get_skipped = true;
        return;
      }
    }
    Result<Table> derived = binding.lens->Get(after);
    if (!derived.ok()) {
      out.status = derived.status();
      return;
    }
    out.get_executed = true;
    Result<const Table*> current = database_->GetTable(binding.view_table);
    if (!current.ok()) {
      out.status = current.status();
      return;
    }
    if (*derived == **current) return;
    Result<bx::SourceChange> view_change =
        bx::AnalyzeSourceChange(**current, *derived);
    if (!view_change.ok()) {
      out.status = view_change.status();
      return;
    }
    ViewRefresh refresh;
    refresh.table_id = binding.table_id;
    refresh.new_view = std::move(*derived);
    refresh.changed_attributes.assign(view_change->changed_attributes.begin(),
                                      view_change->changed_attributes.end());
    refresh.membership_changed = view_change->membership_changed;
    out.refresh = std::move(refresh);
  };
  if (pool_ != nullptr && candidates.size() > 1) {
    threading::TaskGroup group(pool_);
    for (size_t i = 0; i < candidates.size(); ++i) {
      group.Run([&scan_one, i] { scan_one(i); });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < candidates.size(); ++i) scan_one(i);
  }

  std::vector<ViewRefresh> refreshes;
  for (SiblingScan& scan : scans) {
    if (scan.get_skipped) {
      ++gets_skipped_;
      metrics::Inc(gets_skipped_counter_);
    }
    if (scan.get_executed) {
      ++gets_executed_;
      metrics::Inc(gets_executed_counter_);
    }
    if (!scan.status.ok()) return scan.status;
    if (scan.refresh.has_value()) refreshes.push_back(std::move(*scan.refresh));
  }
  metrics::Observe(affected_views_, refreshes.size());
  return refreshes;
}

Status SyncManager::ApplyViewContent(const std::string& table_id,
                                     const Table& content) {
  MEDSYNC_ASSIGN_OR_RETURN(const ViewBinding* binding, FindBinding(table_id));
  return database_->ReplaceTable(binding->view_table, content);
}

}  // namespace medsync::core
