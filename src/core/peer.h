#ifndef MEDSYNC_CORE_PEER_H_
#define MEDSYNC_CORE_PEER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics/protocol_tracer.h"
#include "core/sync_manager.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "net/reliable_channel.h"
#include "net/scheduler.h"
#include "relational/database.h"
#include "runtime/chain_node.h"

namespace medsync::core {

/// Per-peer configuration.
struct PeerConfig {
  /// Network id; also the deterministic key seed ("doctor", "patient", ...).
  std::string name;
  DependencyStrategy strategy = DependencyStrategy::kAnalyzeChange;
  /// How affected sibling views are re-materialized (delta push vs full
  /// lens get); see ViewMaintenance.
  ViewMaintenance maintenance = ViewMaintenance::kIncremental;
  /// Delay before re-sending an unanswered shared-data fetch.
  Micros fetch_retry_delay = 500 * kMicrosPerMilli;
  int max_fetch_retries = 20;
  /// Send peer-to-peer messages through a ReliableChannel (ack/retransmit
  /// with exponential backoff) instead of raw datagrams. All sharing peers
  /// of a deployment should agree on this: a reliable sender's envelopes
  /// are gibberish to a channel-less receiver.
  bool reliable_delivery = true;
  net::ReliableChannel::Options reliable;
  /// How often the peer reconciles against the chain (SyncWithChain): on
  /// every tick it compares its per-table versions with the contract entry
  /// and re-fetches anything it missed — the partition-heal / post-restart
  /// catch-up path. 0 disables the timer.
  Micros catch_up_interval = 3 * kMicrosPerSecond;
};

/// A peer's local half of one shared table: where the source and the
/// materialized view live in its database, and the lens between them.
/// Each sharing peer has its OWN config for the same on-chain table_id —
/// the paper's D13 (patient side, derived from D1) and D31 (doctor side,
/// derived from D3) are both "D13&D31" on-chain.
struct SharedTableConfig {
  std::string table_id;
  std::string source_table;
  std::string view_table;
  bx::LensPtr lens;
  crypto::Address contract;
};

/// A sharing peer: the Client + Server App + Database manager stack of the
/// paper's Fig. 2, bound to a local Database and a trusted chain node.
///
/// Peer implements both protocol roles of Fig. 5:
///  * initiator — stage a view update locally, send a request_update
///    transaction, and commit the staged content only when the contract
///    approves it (steps 1-2, 7-8);
///  * follower — react to an UpdateCommitted notification by fetching the
///    new shared data from the updater, verifying its digest against the
///    on-chain record, applying it, putting it back into the local source
///    with the BX program, acking on-chain, and cascading to any other
///    affected shared views (steps 3-6, 9-11).
class Peer : public net::Endpoint {
 public:
  /// `scheduler`, `network` and `node` must outlive the peer. `node` is the
  /// peer's trusted chain node (Section III-E: "call a smart contract via a
  /// trusted node connected to blockchain").
  Peer(PeerConfig config, net::Scheduler* scheduler, net::Network* network,
       runtime::ChainNode* node);

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Detaches from the network and disarms the chain-node subscriptions
  /// (which outlive the peer inside the node), so a peer can be destroyed
  /// and later re-created against the same node — the restart scenario.
  ~Peer() override;

  /// Attaches to the network and subscribes to the trusted node's receipts
  /// and events.
  void Start();

  /// Switches the peer's database to durable storage rooted at `dir`
  /// (snapshot + WAL; see relational::Database::Open). Must be called
  /// before any tables are created. A restarted peer that reopens the same
  /// directory recovers its full local state, including the per-table sync
  /// versions, and can resume the protocol after SyncWithChain().
  Status UseDurableStorage(const std::string& dir);

  /// Catch-up after a restart or a long offline period: queries the
  /// contract entry for every adopted table; if the on-chain version is
  /// ahead of the local one, starts a fetch from the last updater (who, by
  /// the protocol, holds the newest content). Also reconciles two stuck
  /// same-version states that lossy networks can leave behind: a lane
  /// reorg that rewrote which transaction became our version after our
  /// receipt fired (local digest no longer matches the canonical one —
  /// re-fetch), and a lost ack_update transaction (the entry still lists
  /// us in pending_acks — re-ack). Returns the number of tables that
  /// needed any of this.
  Result<size_t> SyncWithChain();

  const std::string& name() const { return config_.name; }
  const crypto::Address& address() const { return key_.address(); }
  const crypto::KeyPair& key() const { return key_; }
  relational::Database& database() { return database_; }
  const relational::Database& database() const { return database_; }
  SyncManager& sync() { return sync_; }

  /// Peers find each other on the network by name; the contract identifies
  /// them by address. Register the mapping for every sharing counterparty.
  void AddKnownPeer(const std::string& name, const crypto::Address& address);

  // -- Contract interaction ---------------------------------------------

  /// Deploys a fresh metadata contract; the address is deterministic and
  /// returned immediately (the deployment lands with the next block).
  Result<crypto::Address> DeployMetadataContract();

  /// Registers `config`'s table on-chain (provider side). `peer_addresses`
  /// lists all sharing peers including this one; `write_permission` maps
  /// view attribute name -> allowed peer addresses; `membership` lists
  /// peers allowed to insert/delete rows. Returns the transaction id.
  Result<std::string> RegisterSharedTableOnChain(
      const SharedTableConfig& config,
      const std::vector<crypto::Address>& peer_addresses,
      const std::map<std::string, std::vector<crypto::Address>>&
          write_permission,
      const std::vector<crypto::Address>& membership,
      const crypto::Address& authority);

  /// Adopts `config` locally: binds the lens in the sync manager and
  /// starts tracking the table's on-chain version. The local view table
  /// must already hold the agreed initial content.
  Status AdoptSharedTable(const SharedTableConfig& config);

  // -- CRUD on shared data (Fig. 4) ---------------------------------------

  /// Read: local query, no chain round trip.
  Result<relational::Table> ReadSharedTable(const std::string& table_id) const;

  /// Updates this peer's own SOURCE table through `mutation`, then runs the
  /// dependency check and proposes updates for every shared view whose
  /// content changed (the researcher flow, Fig. 5 steps 1-2).
  Status UpdateSourceAndPropagate(
      const std::string& source_table,
      const std::function<Status(relational::Database*)>& mutation);

  /// Updates one attribute of one row of a shared view; on approval the
  /// change is also put back into this peer's source.
  Status UpdateSharedAttribute(const std::string& table_id,
                               const relational::Key& key,
                               const std::string& attribute,
                               relational::Value value);

  /// Inserts / deletes a row of a shared view (entry-level Create/Delete
  /// of Fig. 4).
  Status InsertSharedRow(const std::string& table_id, relational::Row row);
  Status DeleteSharedRow(const std::string& table_id,
                         const relational::Key& key);

  /// Asks the contract to (un)grant `peer` write permission on `attribute`
  /// of `table_id`; only succeeds if this peer is the authority.
  Result<std::string> SubmitChangePermission(const std::string& table_id,
                                             const std::string& attribute,
                                             const crypto::Address& peer,
                                             bool grant);

  // -- Sharing bootstrap ------------------------------------------------------
  //
  // The paper leaves "the initialization of shared data" to future work
  // (Section III-E); this implements it as an offer/accept handshake:
  // the provider sends the agreed view definition plus the initial
  // contents; the invitee's policy decides whether (and against which
  // local source, through which lens) to accept; on acceptance the
  // provider registers the table on-chain and both sides adopt it.

  /// An incoming sharing proposal as the invitee's policy sees it.
  struct ShareOffer {
    std::string table_id;
    crypto::Address contract;
    std::string provider_name;
    crypto::Address provider;
    relational::Schema view_schema;
    relational::Table contents;
  };

  /// Decides whether to accept an offer. Returning an error declines it.
  /// On acceptance, returns this peer's local binding: the source table
  /// the view will sync against, the local name for the view table
  /// (created by the bootstrap), and the lens between them.
  struct ShareAcceptance {
    std::string source_table;
    std::string view_table;
    bx::LensPtr lens;
  };
  using OfferPolicy = std::function<Result<ShareAcceptance>(const ShareOffer&)>;
  void SetOfferPolicy(OfferPolicy policy) { offer_policy_ = std::move(policy); }

  /// Terms the provider will register on-chain once the invitee accepts.
  struct OfferParams {
    std::string table_id;
    std::string source_table;
    std::string view_table;  // must already exist locally
    bx::LensPtr lens;
    crypto::Address contract;
    std::map<std::string, std::vector<crypto::Address>> write_permission;
    std::vector<crypto::Address> membership;
    crypto::Address authority;
  };

  /// Provider side: proposes sharing `params.view_table` with the (known)
  /// peer `counterparty_name`. Registration and local adoption happen when
  /// the acceptance arrives. One offer per table at a time.
  Status OfferSharedTable(const std::string& counterparty_name,
                          OfferParams params);

  /// Whether a sent offer is still awaiting an answer.
  bool HasPendingOffer(const std::string& table_id) const {
    return pending_offers_.count(table_id) > 0;
  }

  // -- Introspection --------------------------------------------------------

  struct TableSyncState {
    uint64_t version = 0;
    std::string digest;
    /// True when a source change could not be propagated (e.g. permission
    /// denied) and the materialized view intentionally lags the source.
    bool needs_refresh = false;
  };
  Result<TableSyncState> GetSyncState(const std::string& table_id) const;

  /// Whether any staged proposals, outstanding fetches, or unacked
  /// reliable sends remain.
  bool HasPendingWork() const {
    return !staged_.empty() || !pending_fetches_.empty() ||
           (channel_ != nullptr && channel_->pending() > 0);
  }

  /// The reliable delivery layer (nullptr when reliable_delivery is off).
  net::ReliableChannel* channel() { return channel_.get(); }

  struct Stats {
    uint64_t updates_proposed = 0;
    uint64_t updates_committed = 0;
    uint64_t updates_denied = 0;
    uint64_t fetches_served = 0;
    uint64_t fetches_applied = 0;
    uint64_t acks_sent = 0;
    uint64_t cascades_proposed = 0;
    uint64_t cascades_blocked = 0;
    uint64_t digest_mismatches = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Receives a copy of every protocol step (the Fig. 5 trace); messages
  /// are prefixed with the simulated time and peer name.
  void SetTraceSink(std::function<void(const std::string&)> sink) {
    trace_sink_ = std::move(sink);
  }

  /// Attaches peer.* counters (mirroring Stats) and forwards the registry
  /// to the sync manager and the database's WAL. The registry must outlive
  /// the peer; nullptr detaches.
  void SetMetrics(metrics::MetricsRegistry* registry);

  /// Records structured Fig. 4/Fig. 5 step events (step number, table,
  /// outcome, sim-time duration) alongside the human-readable trace. The
  /// tracer must outlive the peer; nullptr detaches.
  void SetProtocolTracer(metrics::ProtocolTracer* tracer) { tracer_ = tracer; }

  void OnMessage(const net::Message& message) override;

 private:
  struct TableState {
    SharedTableConfig config;
    uint64_t version = 1;
    std::string digest;
    bool needs_refresh = false;
  };

  /// A locally staged update awaiting contract approval.
  struct StagedUpdate {
    std::string table_id;
    relational::Table staged;
    std::string digest;
    std::string kind;
    std::vector<std::string> attributes;
    /// Whether to run lens put into the source after approval (false when
    /// the update originated FROM the source, which is already current).
    bool put_to_source = true;
    /// Sim time the proposal was submitted (step 2) — the contract
    /// decision's step-3 span is measured from here.
    Micros proposed_at = 0;
  };

  /// An update committed on-chain that we still have to fetch.
  struct PendingFetch {
    std::string table_id;
    uint64_t version = 0;
    std::string digest;
    std::string updater_name;
    int retries = 0;
    /// Sim time the first fetch_request went out (step 8) — the step-9
    /// apply span is measured from here.
    Micros started_at = 0;
  };

  chain::Transaction MakeTransaction(const crypto::Address& to,
                                     const std::string& method, Json params);

  /// Stages `new_view` and submits a request_update transaction.
  Status ProposeViewContent(const std::string& table_id,
                            relational::Table new_view, std::string kind,
                            std::vector<std::string> attributes,
                            bool put_to_source);

  void OnReceipt(const contracts::Receipt& receipt);
  void OnChainEvent(uint64_t height, const contracts::Event& event);
  void HandleUpdateCommitted(const Json& payload);
  void HandleFetchRequest(const net::Message& message);
  void HandleFetchResponse(const net::Message& message);
  void RetryFetch(const std::string& table_id);
  void HandleShareOffer(const net::Message& message);
  void HandleShareAnswer(const net::Message& message);

  /// Commits an approved staged update: replace the view table, optionally
  /// put into the source, and cascade.
  void FinalizeApprovedUpdate(StagedUpdate staged);

  /// Applies a fetched foreign update and acks it on-chain. `started_at`
  /// is the sim time the fetch began (for the step-9 span).
  Status ApplyFetchedUpdate(const std::string& table_id,
                            const relational::Table& content,
                            uint64_t version, const std::string& digest,
                            Micros started_at);

  /// Submits an ack_update transaction for `version`/`digest` of the
  /// table. Used on every fetch apply and by SyncWithChain when an earlier
  /// ack transaction was lost before sealing.
  Status SubmitAck(const TableState& state, uint64_t version,
                   const std::string& digest);

  /// Propagates a source change to sibling shared views. `fig5_step` is 6
  /// when this peer initiated the update, 11 when it follows a fetched one.
  void CascadeAfterSourceChange(const std::string& source_table,
                                const relational::Table& before,
                                const std::string& exclude_table_id,
                                int fig5_step);

  void Trace(const std::string& message);

  /// Emits one structured protocol step event (no-op without a tracer).
  void RecordStep(int figure, int step, std::string action, std::string table,
                  std::string outcome, Micros sim_duration = 0) const;

  Result<std::string> NameOfAddress(const std::string& addr_hex) const;

  /// Persists (or restores) a table's sync version/digest in the local
  /// database so a durable peer survives restarts. No-ops on in-memory
  /// databases without the state table.
  void PersistTableState(const TableState& state);
  void RestorePersistedState(TableState* state);
  void StartFetch(const std::string& table_id, uint64_t version,
                  const std::string& digest, const std::string& updater_name);

  /// Sends a peer-to-peer message through the reliable channel when
  /// enabled, the raw network otherwise.
  Status SendToPeer(const std::string& to, const std::string& type,
                    Json payload);
  /// Arms the next catch-up tick (periodic SyncWithChain).
  void ScheduleCatchUp();

  PeerConfig config_;
  net::Scheduler* scheduler_;
  net::Network* network_;
  runtime::ChainNode* node_;
  crypto::KeyPair key_;
  relational::Database database_;
  SyncManager sync_;

  uint64_t nonce_ = 0;
  std::map<std::string, TableState> tables_;          // by table_id
  std::map<std::string, StagedUpdate> staged_;        // by tx id hex
  std::map<std::string, PendingFetch> pending_fetches_;  // by table_id
  std::map<std::string, std::string> address_to_name_;
  OfferPolicy offer_policy_;
  struct PendingOffer {
    OfferParams params;
    std::string counterparty_name;
  };
  std::map<std::string, PendingOffer> pending_offers_;  // by table_id
  Stats stats_;
  std::function<void(const std::string&)> trace_sink_;
  metrics::ProtocolTracer* tracer_ = nullptr;
  metrics::MetricsRegistry* registry_ = nullptr;
  /// peer.* counters mirroring Stats (all nullptr when detached).
  struct StatCounters {
    metrics::Counter* updates_proposed = nullptr;
    metrics::Counter* updates_committed = nullptr;
    metrics::Counter* updates_denied = nullptr;
    metrics::Counter* fetches_served = nullptr;
    metrics::Counter* fetches_applied = nullptr;
    metrics::Counter* acks_sent = nullptr;
    metrics::Counter* cascades_proposed = nullptr;
    metrics::Counter* cascades_blocked = nullptr;
    metrics::Counter* digest_mismatches = nullptr;
  };
  StatCounters counters_;
  bool started_ = false;
  /// Liveness guard captured by the node-subscription closures: flipped to
  /// false on destruction so late callbacks become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Declared last so it is destroyed first: its give-up callback touches
  /// the members above.
  std::unique_ptr<net::ReliableChannel> channel_;
};

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_PEER_H_
