#include "core/scenario.h"

#include "bx/lens_factory.h"
#include "common/strings.h"
#include "contracts/metadata_contract.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::core {

using medical::kAddress;
using medical::kClinicalData;
using medical::kDosage;
using medical::kMechanismOfAction;
using medical::kMedicationName;
using medical::kModeOfAction;
using medical::kPatientId;
using relational::Table;

constexpr char ClinicScenario::kPatientDoctorTable[];
constexpr char ClinicScenario::kDoctorResearcherTable[];

ClinicScenario::~ClinicScenario() = default;

Result<std::unique_ptr<ClinicScenario>> ClinicScenario::Create(
    const ScenarioOptions& options) {
  auto scenario = std::unique_ptr<ClinicScenario>(new ClinicScenario());
  scenario->options_ = options;
  scenario->metrics_ = std::make_unique<metrics::MetricsRegistry>();
  scenario->tracer_ =
      std::make_unique<metrics::ProtocolTracer>(scenario->metrics_.get());
  metrics::MetricsRegistry* registry = scenario->metrics_.get();
  if (options.worker_threads > 0) {
    scenario->pool_ =
        std::make_unique<threading::ThreadPool>(options.worker_threads);
  }
  threading::ThreadPool* pool = scenario->pool_.get();
  scenario->simulator_ = std::make_unique<net::Simulator>(options.epoch);
  scenario->network_ = std::make_unique<net::SimNetwork>(
      scenario->simulator_.get(), options.latency, options.seed);
  scenario->network_->set_metrics(registry);

  // --- Chain substrate: PoA authorities, one per node. ---------------------
  std::vector<crypto::Address> authorities;
  std::vector<std::shared_ptr<const crypto::KeyPair>> authority_keys;
  for (size_t i = 0; i < options.chain_node_count; ++i) {
    auto key = std::make_shared<crypto::KeyPair>(
        crypto::KeyPair::FromSeed(StrCat("authority-", i)));
    authorities.push_back(key->address());
    authority_keys.push_back(std::move(key));
  }
  chain::Block genesis =
      chain::Blockchain::MakeGenesis(scenario->simulator_->Now());

  for (size_t i = 0; i < options.chain_node_count; ++i) {
    std::shared_ptr<const chain::Sealer> sealer;
    if (options.consensus == ConsensusMode::kPoa) {
      sealer = std::make_shared<chain::PoaSealer>(authorities,
                                                  authority_keys[i]);
    } else {
      auto pow =
          std::make_shared<chain::PowSealer>(options.pow_difficulty_bits, pool);
      pow->set_metrics(registry);
      sealer = std::move(pow);
    }
    auto host = std::make_unique<contracts::ContractHost>();
    host->RegisterType("metadata", contracts::MetadataContract::Create);
    runtime::NodeConfig node_config;
    node_config.id = StrCat("chain-node-", i);
    node_config.block_interval = options.block_interval;
    node_config.max_block_txs = options.max_block_txs;
    node_config.sealing_enabled =
        options.consensus == ConsensusMode::kPoa || i == 0;
    node_config.pool = pool;
    node_config.metrics = registry;
    scenario->nodes_.push_back(std::make_unique<runtime::ChainNode>(
        node_config, scenario->simulator_.get(), scenario->network_.get(),
        std::move(sealer), genesis, contracts::SharedDataConflictKey,
        std::move(host)));
  }
  for (auto& node : scenario->nodes_) node->Start();

  // --- Peers. ---------------------------------------------------------------
  auto make_peer = [&](const std::string& name,
                       size_t node_index) -> std::unique_ptr<Peer> {
    PeerConfig config;
    config.name = name;
    config.strategy = options.strategy;
    config.maintenance = options.maintenance;
    config.reliable_delivery = options.reliable_delivery;
    config.reliable = options.reliable;
    config.catch_up_interval = options.peer_catch_up_interval;
    auto peer = std::make_unique<Peer>(
        config, scenario->simulator_.get(), scenario->network_.get(),
        scenario->nodes_[node_index % scenario->nodes_.size()].get());
    peer->sync().set_thread_pool(pool);
    peer->SetMetrics(registry);
    peer->SetProtocolTracer(scenario->tracer_.get());
    peer->Start();
    return peer;
  };
  scenario->doctor_ = make_peer("doctor", 0);
  scenario->patient_ = make_peer("patient", 1);
  scenario->researcher_ = make_peer("researcher", 2);

  Peer& doctor = *scenario->doctor_;
  Peer& patient = *scenario->patient_;
  Peer& researcher = *scenario->researcher_;
  for (Peer* a : {&doctor, &patient, &researcher}) {
    for (Peer* b : {&doctor, &patient, &researcher}) {
      if (a != b) a->AddKnownPeer(b->name(), b->address());
    }
  }

  // --- Local data (Fig. 1 distribution). ------------------------------------
  Table full = options.record_count == 0
                   ? medical::MakeFig1FullRecords()
                   : medical::GenerateFullRecords(
                         {options.seed, options.record_count, 1000});

  MEDSYNC_ASSIGN_OR_RETURN(
      Table d1, relational::Project(
                    full,
                    {kPatientId, kMedicationName, kClinicalData, kAddress,
                     kDosage},
                    {kPatientId}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d2,
      relational::Project(full,
                          {kMedicationName, kMechanismOfAction, kModeOfAction},
                          {kMedicationName}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d3, relational::Project(
                    full,
                    {kPatientId, kMedicationName, kClinicalData,
                     kMechanismOfAction, kDosage},
                    {kPatientId}));

  auto install = [](Peer& peer, const std::string& name,
                    const Table& table) -> Status {
    MEDSYNC_RETURN_IF_ERROR(
        peer.database().CreateTable(name, table.schema()));
    return peer.database().ReplaceTable(name, table);
  };
  MEDSYNC_RETURN_IF_ERROR(install(patient, "D1", d1));
  MEDSYNC_RETURN_IF_ERROR(install(researcher, "D2", d2));
  MEDSYNC_RETURN_IF_ERROR(install(doctor, "D3", d3));

  // --- Shared views (BX lenses). --------------------------------------------
  bx::LensPtr lens_pd = bx::MakeProjectLens(
      {kPatientId, kMedicationName, kClinicalData, kDosage}, {kPatientId});
  bx::LensPtr lens_dr =
      bx::MakeProjectLens({kMedicationName, kMechanismOfAction},
                          {kMedicationName});

  MEDSYNC_ASSIGN_OR_RETURN(
      Table d13, relational::Project(
                     d1, {kPatientId, kMedicationName, kClinicalData, kDosage},
                     {kPatientId}));
  MEDSYNC_ASSIGN_OR_RETURN(
      Table d32, relational::Project(d3, {kMedicationName, kMechanismOfAction},
                                     {kMedicationName}));
  MEDSYNC_RETURN_IF_ERROR(install(patient, "D13", d13));
  MEDSYNC_RETURN_IF_ERROR(install(doctor, "D31", d13));
  MEDSYNC_RETURN_IF_ERROR(install(researcher, "D23", d32));
  MEDSYNC_RETURN_IF_ERROR(install(doctor, "D32", d32));

  // --- Deploy contract + register tables. -----------------------------------
  MEDSYNC_ASSIGN_OR_RETURN(scenario->contract_,
                           doctor.DeployMetadataContract());
  const crypto::Address& contract = scenario->contract_;

  SharedTableConfig patient_cfg{ClinicScenario::kPatientDoctorTable, "D1",
                                "D13", lens_pd, contract};
  SharedTableConfig doctor_pd_cfg{ClinicScenario::kPatientDoctorTable, "D3",
                                  "D31", lens_pd, contract};
  SharedTableConfig doctor_dr_cfg{ClinicScenario::kDoctorResearcherTable,
                                  "D3", "D32", lens_dr, contract};
  SharedTableConfig researcher_cfg{ClinicScenario::kDoctorResearcherTable,
                                   "D2", "D23", lens_dr, contract};
  MEDSYNC_RETURN_IF_ERROR(patient.AdoptSharedTable(patient_cfg));
  MEDSYNC_RETURN_IF_ERROR(doctor.AdoptSharedTable(doctor_pd_cfg));
  MEDSYNC_RETURN_IF_ERROR(doctor.AdoptSharedTable(doctor_dr_cfg));
  MEDSYNC_RETURN_IF_ERROR(researcher.AdoptSharedTable(researcher_cfg));

  // Fig. 3 permission matrix:
  //   D13&D31 — medication name & dosage writable by Doctor; clinical data
  //             by Patient and Doctor; authority Doctor.
  //   D23&D32 — medication name writable by Doctor and Researcher;
  //             mechanism of action by Researcher; authority Researcher.
  MEDSYNC_RETURN_IF_ERROR(
      doctor
          .RegisterSharedTableOnChain(
              doctor_pd_cfg, {patient.address(), doctor.address()},
              {{kMedicationName, {doctor.address()}},
               {kDosage, {doctor.address()}},
               {kClinicalData, {patient.address(), doctor.address()}}},
              {doctor.address()}, doctor.address())
          .status());
  MEDSYNC_RETURN_IF_ERROR(
      doctor
          .RegisterSharedTableOnChain(
              doctor_dr_cfg, {doctor.address(), researcher.address()},
              {{kMedicationName, {doctor.address(), researcher.address()}},
               {kMechanismOfAction, {researcher.address()}}},
              {doctor.address()}, researcher.address())
          .status());

  MEDSYNC_RETURN_IF_ERROR(scenario->SettleAll());

  // The registrations must actually be on-chain.
  MEDSYNC_RETURN_IF_ERROR(
      scenario->Entry(ClinicScenario::kPatientDoctorTable).status());
  MEDSYNC_RETURN_IF_ERROR(
      scenario->Entry(ClinicScenario::kDoctorResearcherTable).status());

  // Only the steady-state protocol runs under loss.
  scenario->network_->set_drop_probability(options.drop_probability);
  return scenario;
}

bool ClinicScenario::Quiescent() const {
  for (const auto& node : nodes_) {
    if (!node->mempool().empty()) return false;
  }
  for (const Peer* peer :
       {doctor_.get(), patient_.get(), researcher_.get()}) {
    if (peer->HasPendingWork()) return false;
  }
  return true;
}

Status ClinicScenario::SettleAll(Micros timeout) {
  Micros deadline = simulator_->Now() + timeout;
  while (simulator_->Now() < deadline) {
    simulator_->RunFor(options_.block_interval);
    if (!Quiescent()) continue;
    // Quiescent locally; also require no outstanding acks on-chain.
    bool acks_clear = true;
    for (const char* table_id :
         {kPatientDoctorTable, kDoctorResearcherTable}) {
      Result<Json> entry = Entry(table_id);
      if (!entry.ok()) continue;  // not registered yet — treat as clear
      if (entry->At("pending_acks").size() > 0) {
        acks_clear = false;
        break;
      }
    }
    if (acks_clear) return Status::OK();
  }
  return Status::Timeout("scenario did not quiesce in time");
}

Result<Json> ClinicScenario::Entry(const std::string& table_id) {
  Json params = Json::MakeObject();
  params.Set("table_id", table_id);
  return nodes_[0]->Query(contract_, "get_entry", params, doctor_->address());
}

}  // namespace medsync::core
