#include "core/audit.h"

#include "common/strings.h"

namespace medsync::core {

std::vector<AuditRecord> BuildAuditTrail(const chain::Blockchain& chain,
                                         const contracts::ContractHost& host,
                                         const std::string& table_id) {
  std::vector<AuditRecord> trail;
  for (const chain::Block* block : chain.CanonicalChain()) {
    for (const chain::Transaction& tx : block->transactions) {
      auto tx_table = tx.params.GetString("table_id");
      if (!tx_table.ok() || *tx_table != table_id) continue;

      AuditRecord record;
      record.block_height = block->header.height;
      record.block_timestamp = block->header.timestamp;
      record.tx_id = tx.Id().ToHex();
      record.actor = tx.from.ToHex();
      record.method = tx.method;
      if (auto kind = tx.params.GetString("kind"); kind.ok()) {
        record.kind = *kind;
      }
      const Json& attrs = tx.params.At("attributes");
      if (attrs.is_array()) {
        for (const Json& attr : attrs.AsArray()) {
          if (attr.is_string()) record.attributes.push_back(attr.AsString());
        }
      }
      if (auto digest = tx.params.GetString("digest"); digest.ok()) {
        record.digest = *digest;
      }
      const contracts::Receipt* receipt = host.FindReceipt(record.tx_id);
      if (receipt != nullptr) {
        record.committed = receipt->ok;
        if (!receipt->ok) record.denial_reason = receipt->error;
      }
      trail.push_back(std::move(record));
    }
  }
  return trail;
}

Result<InclusionProof> ProveTransactionInclusion(
    const chain::Blockchain& chain, const std::string& tx_id_hex) {
  for (const chain::Block* block : chain.CanonicalChain()) {
    for (size_t i = 0; i < block->transactions.size(); ++i) {
      if (block->transactions[i].Id().ToHex() != tx_id_hex) continue;
      InclusionProof proof;
      proof.tx_id = tx_id_hex;
      proof.header = block->header;
      crypto::MerkleTree tree(block->TransactionLeaves());
      proof.merkle = tree.BuildProof(i);
      return proof;
    }
  }
  return Status::NotFound(
      StrCat("transaction ", tx_id_hex.substr(0, 8),
             " not on the canonical chain"));
}

bool VerifyTransactionInclusion(const InclusionProof& proof) {
  bool ok = false;
  crypto::Hash256 leaf = crypto::Hash256::FromHex(proof.tx_id, &ok);
  if (!ok) return false;
  return crypto::MerkleTree::VerifyProof(leaf, proof.merkle,
                                         proof.header.merkle_root);
}

std::string RenderAuditTrail(const std::vector<AuditRecord>& trail) {
  std::string out;
  for (const AuditRecord& record : trail) {
    out += StrCat("  block ", record.block_height, " @ ",
                  FormatTimestamp(record.block_timestamp), "  ",
                  record.method,
                  record.kind.empty() ? "" : StrCat("/", record.kind), " [",
                  Join(record.attributes, ","), "] by ",
                  record.actor.substr(0, 10), "…  ",
                  record.committed ? "COMMITTED" : "DENIED");
    if (!record.denial_reason.empty()) {
      out += StrCat(" (", record.denial_reason, ")");
    }
    out += "\n";
  }
  if (trail.empty()) out = "  (no on-chain history)\n";
  return out;
}

}  // namespace medsync::core
