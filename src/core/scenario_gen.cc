#include "core/scenario_gen.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <set>
#include <utility>

#include "bx/compose_lens.h"
#include "bx/lens_factory.h"
#include "common/random.h"
#include "common/strings.h"
#include "contracts/metadata_contract.h"
#include "core/audit.h"
#include "crypto/sha256.h"
#include "medical/generator.h"
#include "medical/records.h"
#include "relational/query.h"

namespace medsync::core {

namespace {

using medical::kPatientId;
using relational::CompareOp;
using relational::Predicate;
using relational::Table;
using relational::Value;

/// The six non-key attributes of the full medical record (a1..a6) the
/// generator draws view columns from.
const std::vector<std::string>& AllRawAttributes() {
  static const auto* kAttributes = new std::vector<std::string>{
      medical::kMedicationName,    medical::kClinicalData,
      medical::kAddress,           medical::kDosage,
      medical::kMechanismOfAction, medical::kModeOfAction};
  return *kAttributes;
}

Json StringsToJson(const std::vector<std::string>& items) {
  Json out = Json::MakeArray();
  for (const auto& item : items) out.Append(item);
  return out;
}

/// Name of raw attribute `raw` after `stage` of `stages` rename stages.
/// Stage 0 is the source name; the final stage is the view name.
std::string StageName(const std::string& raw, size_t stage, size_t stages) {
  if (stage == 0) return raw;
  if (stage == stages) return StrCat("v_", raw);
  return StrCat(raw, "_r", stage);
}

}  // namespace

std::string_view PeerRoleName(PeerRole role) {
  switch (role) {
    case PeerRole::kProvider:
      return "provider";
    case PeerRole::kResearcher:
      return "researcher";
    case PeerRole::kInsurer:
      return "insurer";
  }
  return "unknown";
}

Json PeerSpec::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("index", static_cast<uint64_t>(index));
  out.Set("name", name);
  out.Set("role", std::string(PeerRoleName(role)));
  out.Set("durable", durable);
  out.Set("trusted_node", static_cast<uint64_t>(trusted_node));
  out.Set("id_begin", id_begin);
  out.Set("populated", static_cast<uint64_t>(populated));
  out.Set("slack", static_cast<uint64_t>(slack));
  out.Set("source_table", source_table);
  return out;
}

std::string SharedTableSpec::ViewNameOf(const std::string& raw) const {
  return StageName(raw, rename_stages, rename_stages);
}

std::vector<std::string> SharedTableSpec::ViewAttributes() const {
  std::vector<std::string> out;
  out.reserve(raw_attributes.size());
  for (const auto& raw : raw_attributes) out.push_back(ViewNameOf(raw));
  return out;
}

bx::LensPtr SharedTableSpec::MakeLens() const {
  Predicate::Ptr range = Predicate::And(
      Predicate::Compare(kPatientId, CompareOp::kGe, Value::Int(key_lo)),
      Predicate::Compare(kPatientId, CompareOp::kLe, Value::Int(key_hi)));
  bx::LensPtr lens = bx::MakeSelectLens(std::move(range));
  std::vector<std::string> projected = {kPatientId};
  projected.insert(projected.end(), raw_attributes.begin(),
                   raw_attributes.end());
  lens = bx::Compose(std::move(lens),
                     bx::MakeProjectLens(projected, {kPatientId}));
  for (size_t stage = 1; stage <= rename_stages; ++stage) {
    std::vector<std::pair<std::string, std::string>> renames;
    renames.reserve(raw_attributes.size());
    for (const auto& raw : raw_attributes) {
      renames.emplace_back(StageName(raw, stage - 1, rename_stages),
                           StageName(raw, stage, rename_stages));
    }
    lens = bx::Compose(std::move(lens), bx::MakeRenameLens(renames));
  }
  return lens;
}

Json SharedTableSpec::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("table_id", table_id);
  out.Set("provider", static_cast<uint64_t>(provider));
  out.Set("consumer", static_cast<uint64_t>(consumer));
  out.Set("key_lo", key_lo);
  out.Set("key_hi", key_hi);
  out.Set("raw_attributes", StringsToJson(raw_attributes));
  out.Set("rename_stages", static_cast<uint64_t>(rename_stages));
  out.Set("provider_view_table", provider_view_table);
  out.Set("consumer_source_table", consumer_source_table);
  out.Set("consumer_view_table", consumer_view_table);
  out.Set("consumer_writable", StringsToJson(consumer_writable));
  out.Set("authority", static_cast<uint64_t>(authority));
  out.Set("sweep_attr", sweep_attr);
  return out;
}

std::vector<size_t> NetworkSpec::TablesOf(size_t peer) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].provider == peer || tables[i].consumer == peer) {
      out.push_back(i);
    }
  }
  return out;
}

Json NetworkSpec::ToJson() const {
  // Deliberately excludes worker_threads, latency, and durable_root: those
  // are runtime knobs that must not change the generated world (the durable
  // flags on PeerSpec capture the storage shape). Same seed + same sizes
  // therefore dump byte-identically regardless of execution configuration.
  Json opts = Json::MakeObject();
  opts.Set("seed", options.seed);
  opts.Set("peers", static_cast<uint64_t>(options.peers));
  opts.Set("lens_depth", static_cast<uint64_t>(options.lens_depth));
  opts.Set("rows_per_provider",
           static_cast<uint64_t>(options.rows_per_provider));
  opts.Set("slack_per_provider",
           static_cast<uint64_t>(options.slack_per_provider));
  opts.Set("chain_node_count",
           static_cast<uint64_t>(options.chain_node_count));
  opts.Set("block_interval", options.block_interval);
  opts.Set("max_block_txs", static_cast<uint64_t>(options.max_block_txs));
  opts.Set("check_bx_laws", options.check_bx_laws);
  opts.Set("drop_probability", options.drop_probability);
  opts.Set("durable_peer_count",
           static_cast<uint64_t>(options.durable_peer_count));

  Json out = Json::MakeObject();
  out.Set("options", std::move(opts));
  out.Set("epoch", epoch);
  Json peer_array = Json::MakeArray();
  for (const auto& peer : peers) peer_array.Append(peer.ToJson());
  out.Set("peers", std::move(peer_array));
  Json table_array = Json::MakeArray();
  for (const auto& table : tables) table_array.Append(table.ToJson());
  out.Set("tables", std::move(table_array));
  return out;
}

NetworkSpec DescribeNetwork(const GenOptions& options) {
  NetworkSpec spec;
  spec.options = options;
  spec.options.peers = std::max<size_t>(3, options.peers);
  spec.options.lens_depth = std::max<size_t>(2, options.lens_depth);
  spec.options.rows_per_provider =
      std::max<size_t>(2, options.rows_per_provider);
  spec.options.slack_per_provider =
      std::max<size_t>(1, options.slack_per_provider);
  spec.options.chain_node_count =
      std::max<size_t>(1, options.chain_node_count);
  spec.options.lane_count = std::max<size_t>(1, options.lane_count);

  Rng rng(spec.options.seed);
  // A seed fully describes the run, including every block timestamp: the
  // simulated epoch itself is seed-derived (MS002 — no wall clock anywhere).
  spec.epoch = SimClock::kDefaultEpoch +
               static_cast<Micros>(spec.options.seed % 86400) *
                   kMicrosPerSecond;

  const size_t peer_count = spec.options.peers;
  const size_t provider_count = std::max<size_t>(1, peer_count / 4);
  int64_t next_id = 1000;
  for (size_t i = 0; i < peer_count; ++i) {
    PeerSpec peer;
    peer.index = i;
    peer.trusted_node = i % spec.options.chain_node_count;
    if (i < provider_count) {
      peer.role = PeerRole::kProvider;
      peer.name = StrCat("hospital-", i);
      peer.id_begin = next_id;
      peer.populated = spec.options.rows_per_provider;
      peer.slack = spec.options.slack_per_provider;
      peer.source_table = "FULL";
      next_id += static_cast<int64_t>(peer.populated + peer.slack);
    } else {
      peer.role = rng.NextBool(0.5) ? PeerRole::kResearcher
                                    : PeerRole::kInsurer;
      peer.name = StrCat(
          peer.role == PeerRole::kResearcher ? "researcher-" : "insurer-", i);
    }
    spec.peers.push_back(std::move(peer));
  }
  if (!spec.options.durable_root.empty()) {
    size_t marked = 0;
    for (size_t i = provider_count;
         i < peer_count && marked < spec.options.durable_peer_count; ++i) {
      spec.peers[i].durable = true;
      ++marked;
    }
  }

  for (size_t consumer = provider_count; consumer < peer_count; ++consumer) {
    const size_t table_count = rng.NextBool(0.25) ? 2 : 1;
    for (size_t k = 0; k < table_count; ++k) {
      SharedTableSpec table;
      table.table_id = StrCat("GEN-", spec.tables.size());
      table.consumer = consumer;
      table.provider =
          provider_count == 1 ? 0 : rng.NextBelow(provider_count);
      const PeerSpec& provider = spec.peers[table.provider];
      table.key_lo =
          provider.id_begin +
          static_cast<int64_t>(
              rng.NextBelow(std::max<size_t>(1, provider.populated / 2)));
      table.key_hi = provider.id_begin +
                     static_cast<int64_t>(provider.populated +
                                          provider.slack) -
                     1;
      const size_t raw_count = 2 + rng.NextBelow(3);
      table.raw_attributes = rng.PickDistinct(AllRawAttributes(), raw_count);
      table.rename_stages = spec.options.lens_depth - 2;
      table.provider_view_table = StrCat("PV-", table.table_id);
      table.consumer_source_table = StrCat("SRC-", table.table_id);
      table.consumer_view_table = StrCat("CV-", table.table_id);
      const std::vector<std::string> view_attrs = table.ViewAttributes();
      table.consumer_writable =
          rng.PickDistinct(view_attrs, 1 + rng.NextBelow(view_attrs.size()));
      table.authority = rng.NextBool(0.5) ? table.provider : table.consumer;
      table.sweep_attr = table.ViewNameOf(table.raw_attributes[0]);
      spec.tables.push_back(std::move(table));
    }
  }
  return spec;
}

Status ValidateSpec(const NetworkSpec& spec) {
  if (spec.peers.size() < 3) {
    return Status::InvalidArgument("a generated network needs >= 3 peers");
  }
  size_t provider_count = 0;
  std::set<std::string> names;
  for (size_t i = 0; i < spec.peers.size(); ++i) {
    const PeerSpec& peer = spec.peers[i];
    if (peer.index != i) {
      return Status::InvalidArgument(
          StrCat("peer ", i, ": index field disagrees with position"));
    }
    if (peer.name.empty() || !names.insert(peer.name).second) {
      return Status::InvalidArgument(
          StrCat("peer ", i, ": empty or duplicate name"));
    }
    if (peer.role == PeerRole::kProvider) {
      ++provider_count;
      if (peer.populated == 0 || peer.slack == 0) {
        return Status::InvalidArgument(
            StrCat(peer.name,
                   ": a provider needs populated rows and insert slack"));
      }
      if (peer.source_table.empty()) {
        return Status::InvalidArgument(
            StrCat(peer.name, ": a provider needs a source table"));
      }
      if (peer.durable) {
        return Status::InvalidArgument(
            StrCat(peer.name,
                   ": only consumers are crash/restart targets (durable)"));
      }
    } else if (peer.populated != 0 || peer.slack != 0 ||
               !peer.source_table.empty()) {
      return Status::InvalidArgument(
          StrCat(peer.name, ": consumer carries provider-only fields"));
    }
  }
  if (provider_count == 0) {
    return Status::InvalidArgument("a generated network needs >= 1 provider");
  }
  // Provider id slices must be disjoint — a record has exactly one owner.
  std::vector<std::pair<int64_t, int64_t>> slices;
  for (const PeerSpec& peer : spec.peers) {
    if (peer.role != PeerRole::kProvider) continue;
    slices.emplace_back(
        peer.id_begin,
        peer.id_begin + static_cast<int64_t>(peer.populated + peer.slack) - 1);
  }
  std::sort(slices.begin(), slices.end());
  for (size_t i = 1; i < slices.size(); ++i) {
    if (slices[i].first <= slices[i - 1].second) {
      return Status::InvalidArgument("provider id slices overlap");
    }
  }

  const std::vector<std::string>& raws = AllRawAttributes();
  std::set<std::string> table_ids;
  for (const SharedTableSpec& table : spec.tables) {
    if (table.table_id.empty() ||
        !table_ids.insert(table.table_id).second) {
      return Status::InvalidArgument("empty or duplicate shared table id");
    }
    if (table.provider >= spec.peers.size() ||
        table.consumer >= spec.peers.size() ||
        table.provider == table.consumer) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": bad provider/consumer pair"));
    }
    const PeerSpec& provider = spec.peers[table.provider];
    if (provider.role != PeerRole::kProvider) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": provider peer is not a provider"));
    }
    if (spec.peers[table.consumer].role == PeerRole::kProvider) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": consumer peer is a provider"));
    }
    const int64_t slice_end =
        provider.id_begin +
        static_cast<int64_t>(provider.populated + provider.slack) - 1;
    if (table.key_lo > table.key_hi || table.key_lo < provider.id_begin ||
        table.key_hi > slice_end) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": select range leaves the provider slice"));
    }
    const int64_t first_free =
        provider.id_begin + static_cast<int64_t>(provider.populated);
    if (table.key_lo >= first_free) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": select range holds no populated rows"));
    }
    if (table.key_hi < first_free) {
      return Status::InvalidArgument(
          StrCat(table.table_id,
                 ": select range holds no free ids for inserts"));
    }
    if (table.raw_attributes.empty()) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": no raw attributes"));
    }
    std::set<std::string> seen_raw;
    for (const auto& raw : table.raw_attributes) {
      if (std::find(raws.begin(), raws.end(), raw) == raws.end()) {
        return Status::InvalidArgument(
            StrCat(table.table_id, ": unknown raw attribute ", raw));
      }
      if (!seen_raw.insert(raw).second) {
        return Status::InvalidArgument(
            StrCat(table.table_id, ": duplicate raw attribute ", raw));
      }
    }
    const std::vector<std::string> view_attrs = table.ViewAttributes();
    if (table.consumer_writable.empty()) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": consumer can write nothing"));
    }
    std::set<std::string> seen_writable;
    for (const auto& attr : table.consumer_writable) {
      if (std::find(view_attrs.begin(), view_attrs.end(), attr) ==
          view_attrs.end()) {
        return Status::InvalidArgument(
            StrCat(table.table_id, ": writable attribute ", attr,
                   " not in the view schema"));
      }
      if (!seen_writable.insert(attr).second) {
        return Status::InvalidArgument(
            StrCat(table.table_id, ": duplicate writable attribute ", attr));
      }
    }
    if (std::find(view_attrs.begin(), view_attrs.end(), table.sweep_attr) ==
        view_attrs.end()) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": sweep attribute not in the view schema"));
    }
    if (table.authority != table.provider &&
        table.authority != table.consumer) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": authority is not a sharing peer"));
    }
    if (table.provider_view_table.empty() ||
        table.consumer_source_table.empty() ||
        table.consumer_view_table.empty()) {
      return Status::InvalidArgument(
          StrCat(table.table_id, ": missing local table names"));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// GeneratedScenario
// ---------------------------------------------------------------------------

GeneratedScenario::~GeneratedScenario() {
  if (FaultInjector::Get() == &injector_) FaultInjector::Install(nullptr);
}

Result<std::unique_ptr<GeneratedScenario>> GeneratedScenario::Create(
    const GenOptions& options) {
  return CreateFromSpec(DescribeNetwork(options));
}

Result<std::unique_ptr<GeneratedScenario>> GeneratedScenario::CreateFromSpec(
    NetworkSpec spec) {
  MEDSYNC_RETURN_IF_ERROR(ValidateSpec(spec));
  auto scenario = std::unique_ptr<GeneratedScenario>(new GeneratedScenario());
  scenario->spec_ = std::move(spec);
  FaultInjector::Install(&scenario->injector_);
  MEDSYNC_RETURN_IF_ERROR(scenario->Bootstrap());
  return scenario;
}

std::string GeneratedScenario::DurableDir(size_t i) const {
  return StrCat(spec_.options.durable_root, "/", spec_.peers[i].name);
}

Result<std::unique_ptr<Peer>> GeneratedScenario::MakePeerObject(size_t i) {
  const PeerSpec& spec = spec_.peers[i];
  PeerConfig config;
  config.name = spec.name;
  auto peer = std::make_unique<Peer>(
      config, simulator_.get(), network_.get(),
      nodes_[spec.trusted_node % nodes_.size()].get());
  peer->sync().set_thread_pool(pool_.get());
  // Metrics before durable storage so the WAL re-attaches to the registry.
  peer->SetMetrics(metrics_.get());
  peer->SetProtocolTracer(tracer_.get());
  if (spec.durable) {
    MEDSYNC_RETURN_IF_ERROR(peer->UseDurableStorage(DurableDir(i)));
  }
  peer->sync().set_check_bx_laws(spec_.options.check_bx_laws);
  peer->Start();
  return peer;
}

Status GeneratedScenario::Bootstrap() {
  const GenOptions& options = spec_.options;
  metrics_ = std::make_unique<metrics::MetricsRegistry>();
  tracer_ = std::make_unique<metrics::ProtocolTracer>(metrics_.get());
  if (options.worker_threads > 0) {
    pool_ = std::make_unique<threading::ThreadPool>(options.worker_threads);
  }
  simulator_ = std::make_unique<net::Simulator>(spec_.epoch);
  network_ = std::make_unique<net::SimNetwork>(simulator_.get(), options.latency,
                                            options.seed);
  network_->set_metrics(metrics_.get());

  // --- Chain substrate: PoA authorities, one per node. ---------------------
  std::vector<crypto::Address> authorities;
  std::vector<std::shared_ptr<const crypto::KeyPair>> authority_keys;
  for (size_t i = 0; i < options.chain_node_count; ++i) {
    auto key = std::make_shared<crypto::KeyPair>(
        crypto::KeyPair::FromSeed(StrCat("authority-", i)));
    authorities.push_back(key->address());
    authority_keys.push_back(std::move(key));
  }
  chain::Block genesis = chain::Blockchain::MakeGenesis(simulator_->Now());
  for (size_t i = 0; i < options.chain_node_count; ++i) {
    auto host = std::make_unique<contracts::ContractHost>();
    host->RegisterType("metadata", contracts::MetadataContract::Create);
    runtime::NodeConfig node_config;
    node_config.id = StrCat("chain-node-", i);
    node_config.block_interval = options.block_interval;
    node_config.max_block_txs = options.max_block_txs;
    node_config.sealing_enabled = true;
    node_config.lane_count = options.lane_count;
    node_config.lane_key = contracts::SharedDataLaneKey;
    node_config.pool = pool_.get();
    node_config.metrics = metrics_.get();
    all_node_ids_.push_back(node_config.id);
    // Slot-rotation PoA (slot = block_interval): one authority owns every
    // lane per tick, and WHICH node seals at a given instant is a function
    // of time alone — so block production timing is invariant across lane
    // counts, the property LaneInvariantFingerprint depends on.
    nodes_.push_back(std::make_unique<runtime::ChainNode>(
        std::move(node_config), simulator_.get(), network_.get(),
        std::make_shared<chain::PoaSealer>(authorities, authority_keys[i],
                                           options.block_interval),
        genesis, contracts::SharedDataConflictKey, std::move(host)));
  }
  for (auto& node : nodes_) node->Start();

  // --- Peers. ---------------------------------------------------------------
  const size_t peer_count = spec_.peers.size();
  addresses_.reserve(peer_count);
  for (const PeerSpec& peer : spec_.peers) {
    addresses_.push_back(crypto::KeyPair::FromSeed(peer.name).address());
    all_node_ids_.push_back(peer.name);
  }
  isolated_.assign(peer_count, false);
  if (!options.durable_root.empty()) {
    if (::mkdir(options.durable_root.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal(
          StrCat("cannot create durable root ", options.durable_root));
    }
  }
  peers_.resize(peer_count);
  for (size_t i = 0; i < peer_count; ++i) {
    MEDSYNC_ASSIGN_OR_RETURN(peers_[i], MakePeerObject(i));
  }
  for (size_t i = 0; i < peer_count; ++i) {
    for (size_t j = 0; j < peer_count; ++j) {
      if (i != j) peers_[i]->AddKnownPeer(spec_.peers[j].name, addresses_[j]);
    }
  }

  // --- Local data: one global record pool, remapped onto the providers'
  // (gapped) id slices, then sliced per provider. ---------------------------
  std::vector<int64_t> target_ids;
  for (const PeerSpec& peer : spec_.peers) {
    if (peer.role != PeerRole::kProvider) continue;
    for (size_t k = 0; k < peer.populated; ++k) {
      target_ids.push_back(peer.id_begin + static_cast<int64_t>(k));
    }
  }
  Table global = medical::GenerateFullRecords(
      {options.seed, target_ids.size(), 1000});
  const std::optional<size_t> key_index =
      global.schema().IndexOf(kPatientId);
  if (!key_index.has_value()) {
    return Status::Internal("generated records lack the patient-id key");
  }
  Table remapped(global.schema());
  size_t next_target = 0;
  for (const auto& [key, row] : global.scan()) {
    relational::Row moved = row;
    moved[*key_index] = Value::Int(target_ids[next_target++]);
    MEDSYNC_RETURN_IF_ERROR(remapped.Insert(std::move(moved)));
  }

  auto install = [](Peer& peer, const std::string& name,
                    const Table& table) -> Status {
    MEDSYNC_RETURN_IF_ERROR(peer.database().CreateTable(name, table.schema()));
    return peer.database().ReplaceTable(name, table);
  };
  auto range_predicate = [](int64_t lo, int64_t hi) {
    return Predicate::And(
        Predicate::Compare(kPatientId, CompareOp::kGe, Value::Int(lo)),
        Predicate::Compare(kPatientId, CompareOp::kLe, Value::Int(hi)));
  };
  std::vector<Table> provider_slices(peer_count);
  for (const PeerSpec& peer : spec_.peers) {
    if (peer.role != PeerRole::kProvider) continue;
    const int64_t slice_end =
        peer.id_begin + static_cast<int64_t>(peer.populated + peer.slack) - 1;
    MEDSYNC_ASSIGN_OR_RETURN(
        provider_slices[peer.index],
        relational::Select(remapped,
                           range_predicate(peer.id_begin, slice_end)));
    MEDSYNC_RETURN_IF_ERROR(install(*peers_[peer.index], peer.source_table,
                                    provider_slices[peer.index]));
  }

  // --- Shared tables: provider view, consumer source + view (both sides of
  // each table materialize through the SAME lens pipeline). -----------------
  std::vector<bx::LensPtr> lenses;
  lenses.reserve(spec_.tables.size());
  for (const SharedTableSpec& table : spec_.tables) {
    bx::LensPtr lens = table.MakeLens();
    Peer& provider = *peers_[table.provider];
    Peer& consumer = *peers_[table.consumer];
    MEDSYNC_ASSIGN_OR_RETURN(
        Table provider_view, lens->Get(provider_slices[table.provider]));
    MEDSYNC_ASSIGN_OR_RETURN(
        Table consumer_rows,
        relational::Select(remapped,
                           range_predicate(table.key_lo, table.key_hi)));
    std::vector<std::string> projected = {kPatientId};
    projected.insert(projected.end(), table.raw_attributes.begin(),
                     table.raw_attributes.end());
    MEDSYNC_ASSIGN_OR_RETURN(
        Table consumer_source,
        relational::Project(consumer_rows, projected, {kPatientId}));
    MEDSYNC_ASSIGN_OR_RETURN(Table consumer_view,
                             lens->Get(consumer_source));
    if (consumer_view != provider_view) {
      return Status::Internal(
          StrCat(table.table_id, ": generated initial views disagree"));
    }
    MEDSYNC_RETURN_IF_ERROR(
        install(provider, table.provider_view_table, provider_view));
    MEDSYNC_RETURN_IF_ERROR(
        install(consumer, table.consumer_source_table, consumer_source));
    MEDSYNC_RETURN_IF_ERROR(
        install(consumer, table.consumer_view_table, consumer_view));
    lenses.push_back(std::move(lens));
  }

  // --- Deploy contract + adopt + register. ---------------------------------
  MEDSYNC_ASSIGN_OR_RETURN(contract_, peers_[0]->DeployMetadataContract());
  // Let the deployment seal and gossip to every node before any provider
  // registers: registrations go through each provider's own trusted node,
  // and a registration sealed before the deploy would execute against a
  // contract that does not exist yet.
  MEDSYNC_RETURN_IF_ERROR(SettleAll());
  for (size_t t = 0; t < spec_.tables.size(); ++t) {
    const SharedTableSpec& table = spec_.tables[t];
    Peer& provider = *peers_[table.provider];
    Peer& consumer = *peers_[table.consumer];
    SharedTableConfig provider_cfg{
        table.table_id, spec_.peers[table.provider].source_table,
        table.provider_view_table, lenses[t], contract_};
    SharedTableConfig consumer_cfg{table.table_id,
                                   table.consumer_source_table,
                                   table.consumer_view_table, lenses[t],
                                   contract_};
    MEDSYNC_RETURN_IF_ERROR(provider.AdoptSharedTable(provider_cfg));
    MEDSYNC_RETURN_IF_ERROR(consumer.AdoptSharedTable(consumer_cfg));
    // The provider may write every view attribute (cascade liveness: its
    // source updates must always be able to flow down); the consumer only
    // its granted subset.
    std::map<std::string, std::vector<crypto::Address>> write_permission;
    for (const std::string& attr : table.ViewAttributes()) {
      write_permission[attr] = {addresses_[table.provider]};
    }
    for (const std::string& attr : table.consumer_writable) {
      write_permission[attr].push_back(addresses_[table.consumer]);
    }
    MEDSYNC_RETURN_IF_ERROR(
        provider
            .RegisterSharedTableOnChain(
                provider_cfg,
                {addresses_[table.provider], addresses_[table.consumer]},
                write_permission,
                {addresses_[table.provider], addresses_[table.consumer]},
                addresses_[table.authority])
            .status());
  }

  MEDSYNC_RETURN_IF_ERROR(SettleAll());
  // Every registration must actually be on-chain.
  for (const SharedTableSpec& table : spec_.tables) {
    MEDSYNC_RETURN_IF_ERROR(Entry(table.table_id).status());
  }
  // Only the steady-state protocol runs under loss.
  network_->set_drop_probability(options.drop_probability);
  return Status::OK();
}

bool GeneratedScenario::Quiescent() const {
  for (const auto& node : nodes_) {
    if (!node->mempools_empty()) return false;
  }
  for (const auto& peer : peers_) {
    if (peer != nullptr && peer->HasPendingWork()) return false;
  }
  return true;
}

Status GeneratedScenario::SettleAll(Micros timeout) {
  const Micros deadline = simulator_->Now() + timeout;
  while (simulator_->Now() < deadline) {
    simulator_->RunFor(spec_.options.block_interval);
    if (!Quiescent()) continue;
    bool acks_clear = true;
    for (const SharedTableSpec& table : spec_.tables) {
      Result<Json> entry = Entry(table.table_id);
      if (!entry.ok()) continue;  // not registered yet — treat as clear
      if (entry->At("pending_acks").size() > 0) {
        acks_clear = false;
        break;
      }
    }
    if (acks_clear) return Status::OK();
  }
  return Status::Timeout("generated scenario did not quiesce in time");
}

Result<Json> GeneratedScenario::Entry(const std::string& table_id) {
  Json params = Json::MakeObject();
  params.Set("table_id", table_id);
  return nodes_[0]->Query(contract_, "get_entry", params, addresses_[0]);
}

Status GeneratedScenario::CrashPeer(size_t i, bool torn_tail) {
  if (i >= peers_.size()) return Status::InvalidArgument("no such peer");
  const PeerSpec& spec = spec_.peers[i];
  if (!spec.durable) {
    return Status::FailedPrecondition(
        StrCat(spec.name, " is not durable; nothing would survive a crash"));
  }
  if (!IsUp(i)) {
    return Status::FailedPrecondition(StrCat(spec.name, " is already down"));
  }
  if (peers_[i]->HasPendingWork()) {
    return Status::FailedPrecondition(
        StrCat(spec.name,
               " has staged or in-flight work; crashing now would strand "
               "approved content"));
  }
  if (torn_tail) {
    // Tear the victim's WAL tail: arm the torn-write point, attempt a doomed
    // local update (it fails at the WAL append, before anything propagates),
    // then crash. Restart recovery has to truncate a genuine torn record.
    for (size_t t : spec_.TablesOf(i)) {
      const SharedTableSpec& table = spec_.tables[t];
      const std::string& source = table.consumer == i
                                      ? table.consumer_source_table
                                      : spec.source_table;
      MEDSYNC_ASSIGN_OR_RETURN(Table snapshot,
                               peers_[i]->database().Snapshot(source));
      if (snapshot.empty()) continue;
      const relational::Key key = snapshot.NthKey(0);
      const std::string attr = table.raw_attributes[0];
      injector_.TornWrite("wal.append.write", 5);
      Status doomed = peers_[i]->UpdateSourceAndPropagate(
          source, [&](relational::Database* db) {
            return db->UpdateAttribute(source, key, attr,
                                       Value::String("torn"));
          });
      injector_.Disarm("wal.append.write");
      if (doomed.ok()) {
        return Status::Internal("torn WAL append unexpectedly succeeded");
      }
      break;
    }
  }
  peers_[i] = nullptr;
  return Status::OK();
}

Status GeneratedScenario::RestartPeer(size_t i) {
  if (i >= peers_.size()) return Status::InvalidArgument("no such peer");
  const PeerSpec& spec = spec_.peers[i];
  if (IsUp(i)) {
    return Status::FailedPrecondition(StrCat(spec.name, " is already up"));
  }
  MEDSYNC_ASSIGN_OR_RETURN(std::unique_ptr<Peer> peer, MakePeerObject(i));
  for (size_t j = 0; j < peers_.size(); ++j) {
    if (i != j) peer->AddKnownPeer(spec_.peers[j].name, addresses_[j]);
  }
  for (size_t t : spec_.TablesOf(i)) {
    const SharedTableSpec& table = spec_.tables[t];
    SharedTableConfig config =
        table.consumer == i
            ? SharedTableConfig{table.table_id, table.consumer_source_table,
                                table.consumer_view_table, table.MakeLens(),
                                contract_}
            : SharedTableConfig{table.table_id, spec.source_table,
                                table.provider_view_table, table.MakeLens(),
                                contract_};
    MEDSYNC_RETURN_IF_ERROR(peer->AdoptSharedTable(config));
  }
  peers_[i] = std::move(peer);
  return peers_[i]->SyncWithChain().status();
}

void GeneratedScenario::IsolatePeer(size_t i, bool isolated) {
  const std::string& name = spec_.peers[i].name;
  for (const std::string& id : all_node_ids_) {
    if (id != name) network_->SetLinkDown(name, id, isolated);
  }
  isolated_[i] = isolated;
}

std::string GeneratedScenario::Fingerprint() const {
  crypto::Sha256 hash;
  hash.Update(StrCat("now=", simulator_->Now(), "\n"));
  for (const auto& node : nodes_) {
    for (size_t l = 0; l < node->lane_count(); ++l) {
      hash.Update(node->blockchain(l).head().header.Hash().ToHex());
    }
    hash.Update(node->host().StateFingerprint());
  }
  for (size_t i = 0; i < peers_.size(); ++i) {
    hash.Update(spec_.peers[i].name);
    if (peers_[i] == nullptr) {
      hash.Update("|down\n");
      continue;
    }
    for (const std::string& table : peers_[i]->database().TableNames()) {
      Result<Table> snapshot = peers_[i]->database().Snapshot(table);
      hash.Update(StrCat("|", table, "=",
                         snapshot.ok() ? snapshot->ContentDigest() : "?"));
    }
    hash.Update("\n");
  }
  hash.Update(metrics_->Snapshot().Dump());
  for (const std::string& visit : injector_.visits()) hash.Update(visit);
  return hash.Finish().ToHex();
}

std::string GeneratedScenario::LaneInvariantFingerprint() const {
  // What the network COMPUTED, not how the chain partitioned it: contract
  // state and peer tables converge to the same bytes at any lane count
  // (per-table ordering is lane-confined; slot PoA keeps block timing lane-
  // independent), while block hashes, per-message accounting, and receipt
  // ids do not. Injector visits are sorted because lane-parallel sealing
  // may reorder when storage fault points fire within one tick.
  crypto::Sha256 hash;
  hash.Update(StrCat("now=", simulator_->Now(), "\n"));
  for (const auto& node : nodes_) {
    hash.Update(node->host().StateFingerprint());
  }
  for (size_t i = 0; i < peers_.size(); ++i) {
    hash.Update(spec_.peers[i].name);
    if (peers_[i] == nullptr) {
      hash.Update("|down\n");
      continue;
    }
    for (const std::string& table : peers_[i]->database().TableNames()) {
      Result<Table> snapshot = peers_[i]->database().Snapshot(table);
      hash.Update(StrCat("|", table, "=",
                         snapshot.ok() ? snapshot->ContentDigest() : "?"));
    }
    hash.Update("\n");
  }
  std::vector<std::string> visits = injector_.visits();
  std::sort(visits.begin(), visits.end());
  for (const std::string& visit : visits) hash.Update(visit);
  return hash.Finish().ToHex();
}

Status GeneratedScenario::VerifyConverged() {
  for (const SharedTableSpec& table : spec_.tables) {
    if (!IsUp(table.provider) || !IsUp(table.consumer)) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": a sharing peer is down"));
    }
    Peer& provider = *peers_[table.provider];
    Peer& consumer = *peers_[table.consumer];
    MEDSYNC_ASSIGN_OR_RETURN(Table provider_view,
                             provider.ReadSharedTable(table.table_id));
    MEDSYNC_ASSIGN_OR_RETURN(Table consumer_view,
                             consumer.ReadSharedTable(table.table_id));
    if (provider_view != consumer_view) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": provider and consumer views differ"));
    }
    MEDSYNC_ASSIGN_OR_RETURN(Peer::TableSyncState provider_state,
                             provider.GetSyncState(table.table_id));
    MEDSYNC_ASSIGN_OR_RETURN(Peer::TableSyncState consumer_state,
                             consumer.GetSyncState(table.table_id));
    if (provider_state.needs_refresh || consumer_state.needs_refresh) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": a view is still flagged needs_refresh"));
    }
    if (provider_state.version != consumer_state.version) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": version disagreement (",
                 provider_state.version, " vs ", consumer_state.version, ")"));
    }
    MEDSYNC_ASSIGN_OR_RETURN(Json entry, Entry(table.table_id));
    if (entry.At("pending_acks").size() > 0) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": outstanding acks"));
    }
  }
  return Status::OK();
}

Status GeneratedScenario::VerifyAuditGapless() {
  for (const SharedTableSpec& table : spec_.tables) {
    MEDSYNC_ASSIGN_OR_RETURN(Json entry, Entry(table.table_id));
    MEDSYNC_ASSIGN_OR_RETURN(int64_t version, entry.GetInt("version"));
    // A table's whole history seals on one lane (SharedDataLaneKey), so
    // the audit walk reads exactly that lane's canonical chain.
    const uint32_t lane = chain::LaneForKey(
        StrCat(contract_.ToHex(), "/", table.table_id),
        nodes_[0]->lane_count());
    const std::vector<AuditRecord> trail = BuildAuditTrail(
        nodes_[0]->blockchain(lane), nodes_[0]->host(), table.table_id);
    int64_t updates = 0;
    int64_t acks = 0;
    for (const AuditRecord& record : trail) {
      if (!record.committed) continue;
      if (record.method == "request_update") ++updates;
      if (record.method == "ack_update") ++acks;
    }
    if (updates != version - 1) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": audit gap — ", updates,
                 " committed updates on-chain vs version ", version));
    }
    if (acks < updates) {
      return Status::FailedPrecondition(
          StrCat(table.table_id, ": ", acks, " committed acks for ", updates,
                 " updates"));
    }
  }
  return Status::OK();
}

}  // namespace medsync::core
