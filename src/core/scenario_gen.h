#ifndef MEDSYNC_CORE_SCENARIO_GEN_H_
#define MEDSYNC_CORE_SCENARIO_GEN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/threading/thread_pool.h"
#include "core/peer.h"
#include "net/network.h"
#include "net/simulator.h"
#include "runtime/chain_node.h"

namespace medsync::core {

/// Seeded hospital-network generator (ROADMAP item 5). DescribeNetwork
/// expands a single uint64 seed into a pure, JSON-serializable NetworkSpec
/// — N peers with a provider/researcher/insurer role mix, shared tables
/// with overlapping key ranges over each provider's records, and
/// select∘project∘rename lens chains of configurable depth — and
/// GeneratedScenario materializes that spec into a fully wired simulated
/// deployment (chain nodes, peers, contract, registrations). Everything
/// downstream of the seed is deterministic: same seed, byte-identical
/// world, byte-identical run fingerprint across thread-pool sizes.

/// Stakeholder role of a generated peer. Providers (hospitals) own a slice
/// of the global record space and share fine-grained views of it;
/// researchers and insurers consume those views through their own local
/// sources (the paper's D2-style tables).
enum class PeerRole { kProvider, kResearcher, kInsurer };

std::string_view PeerRoleName(PeerRole role);

/// Knobs of the generator. Everything observable about the generated world
/// derives from `seed` and these sizes.
struct GenOptions {
  uint64_t seed = 1;
  /// Total peers, providers included (min 3: one provider, two consumers).
  size_t peers = 8;
  /// Lens stages per shared table: select, project, then (depth - 2)
  /// rename stages (min 2).
  size_t lens_depth = 3;
  /// Populated records per provider, plus unpopulated key slack so insert
  /// events always have in-range free ids (GetPut-safe inserts).
  size_t rows_per_provider = 6;
  size_t slack_per_provider = 4;
  size_t chain_node_count = 3;
  Micros block_interval = 1 * kMicrosPerSecond;
  size_t max_block_txs = 256;
  /// Chain lanes (shards) per node. Like worker_threads, a pure runtime
  /// knob: the generated world and the lane-invariant fingerprint are
  /// identical at any lane count (sealing uses slot-rotation PoA so block
  /// timing does not depend on lanes). Excluded from NetworkSpec::ToJson.
  size_t lane_count = 1;
  /// 0 = serial; otherwise one shared ThreadPool for nodes and peers.
  size_t worker_threads = 0;
  /// Online BX-law oracle on every peer (SyncManager::set_check_bx_laws).
  bool check_bx_laws = true;
  /// Steady-state message loss (applied after bootstrap, like
  /// ScenarioOptions::drop_probability).
  double drop_probability = 0.0;
  /// Non-empty = the first `durable_peer_count` consumers get snapshot+WAL
  /// databases rooted here and become crash/restart targets.
  std::string durable_root;
  size_t durable_peer_count = 2;
  net::LatencyModel latency;
};

/// One generated peer. Providers carry a contiguous patient-id slice
/// [id_begin, id_begin + populated + slack): the first `populated` ids hold
/// records, the rest are free key space for generated inserts.
struct PeerSpec {
  size_t index = 0;
  std::string name;
  PeerRole role = PeerRole::kProvider;
  bool durable = false;
  size_t trusted_node = 0;
  int64_t id_begin = 0;
  size_t populated = 0;
  size_t slack = 0;
  /// Provider-only: local table holding its full record slice.
  std::string source_table;

  Json ToJson() const;
};

/// One generated shared table between a provider and a consumer: a key
/// range of the provider's slice, a raw-attribute subset, and a lens
/// pipeline select(range) ∘ project(raws) ∘ rename^stages. Both sides run
/// the SAME pipeline — the provider against its full slice, the consumer
/// against a per-table source holding exactly the raw columns — so the
/// registered view definitions agree byte-for-byte.
struct SharedTableSpec {
  std::string table_id;
  size_t provider = 0;  // peer index
  size_t consumer = 0;  // peer index
  /// Inclusive select range on the key; always covers the provider's slack
  /// tail so inserts have room.
  int64_t key_lo = 0;
  int64_t key_hi = 0;
  /// Non-key source attributes flowing into the view, in view order.
  std::vector<std::string> raw_attributes;
  /// Rename stages appended after select+project (lens depth - 2).
  size_t rename_stages = 0;
  std::string provider_view_table;
  std::string consumer_source_table;
  std::string consumer_view_table;
  /// View-attribute names the consumer may write (provider writes all).
  std::vector<std::string> consumer_writable;
  /// Peer index (provider or consumer) allowed to change permissions.
  size_t authority = 0;
  /// A provider-writable view attribute the heal sweep updates to flush
  /// views left needs_refresh by denied cascades.
  std::string sweep_attr;

  /// View-side name of raw attribute `raw` after all rename stages.
  std::string ViewNameOf(const std::string& raw) const;
  /// Non-key view attribute names, in view order.
  std::vector<std::string> ViewAttributes() const;
  /// The lens pipeline (identical on both sides of the table).
  bx::LensPtr MakeLens() const;

  Json ToJson() const;
};

/// The pure network description: canonical JSON bytes are the generator's
/// determinism contract (core_scenario_gen_test compares them).
struct NetworkSpec {
  GenOptions options;
  /// Seed-derived simulated epoch the world starts at — a seed fully
  /// describes the run including every block timestamp.
  Micros epoch = 0;
  std::vector<PeerSpec> peers;
  std::vector<SharedTableSpec> tables;

  std::vector<size_t> TablesOf(size_t peer) const;
  Json ToJson() const;
};

/// Expands a seed into a network description (pure, no side effects).
NetworkSpec DescribeNetwork(const GenOptions& options);

/// Checks the contract invariants every generated spec must satisfy before
/// a run starts: roles consistent, key ranges inside the owning provider's
/// slice with populated rows and insert slack, attributes drawn from the
/// record schema, the provider a writer of every view attribute (cascade
/// liveness), consumer_writable and sweep_attr within the view schema, and
/// the authority one of the two sharing peers.
Status ValidateSpec(const NetworkSpec& spec);

/// A materialized generated network: chain substrate, peers, contract,
/// registered shared tables — plus deterministic adversity controls
/// (crash/restart of durable peers, per-peer isolation) and the run
/// oracles (convergence, audit gaplessness, a byte-exact fingerprint).
///
/// Installs a process-wide FaultInjector for its lifetime (crash events
/// exercise torn-tail WAL recovery through it), so keep at most one
/// GeneratedScenario alive at a time.
class GeneratedScenario {
 public:
  static Result<std::unique_ptr<GeneratedScenario>> Create(
      const GenOptions& options);
  static Result<std::unique_ptr<GeneratedScenario>> CreateFromSpec(
      NetworkSpec spec);

  ~GeneratedScenario();

  const NetworkSpec& spec() const { return spec_; }
  net::Simulator& simulator() { return *simulator_; }
  net::SimNetwork& network() { return *network_; }
  runtime::ChainNode& node(size_t i) { return *nodes_[i]; }
  size_t node_count() const { return nodes_.size(); }
  size_t peer_count() const { return peers_.size(); }
  /// nullptr while the peer is crashed.
  Peer* peer(size_t i) { return peers_[i].get(); }
  bool IsUp(size_t i) const { return peers_[i] != nullptr; }
  /// Stable across crash/restart (derived from the peer's name).
  const crypto::Address& peer_address(size_t i) const {
    return addresses_[i];
  }
  const crypto::Address& contract() const { return contract_; }
  metrics::MetricsRegistry& metrics() { return *metrics_; }
  Json MetricsSnapshot() const { return metrics_->Snapshot(); }
  FaultInjector& injector() { return injector_; }

  /// Advances simulated time by `duration`.
  void RunFor(Micros duration) { simulator_->RunFor(duration); }

  /// Runs until every mempool is empty, every live peer is idle, and no
  /// table has outstanding acks (crashed peers keep acks outstanding —
  /// restart them first).
  Status SettleAll(Micros timeout = 600 * kMicrosPerSecond);

  /// The contract's metadata entry for `table_id` (via node 0).
  Result<Json> Entry(const std::string& table_id);

  // -- Adversity controls ---------------------------------------------------

  /// Destroys durable peer `i` (it must be idle — crash with staged
  /// proposals strands content that exists nowhere). With `torn_tail`, a
  /// FaultInjector-torn WAL append is issued first so restart recovery has
  /// to truncate a genuine torn tail.
  Status CrashPeer(size_t i, bool torn_tail);

  /// Recreates peer `i` from its durable directory, re-adopts its shared
  /// tables, and starts chain catch-up.
  Status RestartPeer(size_t i);

  /// Cuts (or heals) every network link of peer `i` — the single-peer
  /// partition. Survives crash/restart of either endpoint.
  void IsolatePeer(size_t i, bool isolated);
  bool IsIsolated(size_t i) const { return isolated_[i]; }

  // -- Oracles --------------------------------------------------------------

  /// SHA-256 over the run-relevant deterministic state: chain heads (every
  /// lane), contract state fingerprints, every live peer's table digests,
  /// simulated time, the metrics snapshot, and the fault-point visit log.
  /// Byte-identical across reruns of a seed and across worker pool sizes
  /// (NOT across lane counts — block hashes carry the lane id).
  std::string Fingerprint() const;

  /// The lane-count-invariant projection of Fingerprint(): simulated time,
  /// per-node contract state fingerprints, per-peer table digests, and the
  /// SORTED fault-point visit log. Chain heads and the metrics snapshot are
  /// excluded (lane counts change block hashes and message accounting but
  /// must not change what the network computed). Byte-identical across
  /// reruns of a seed at ANY lane count and worker pool size, for runs
  /// whose network RNG stream is untouched (zero jitter, zero drops).
  std::string LaneInvariantFingerprint() const;

  /// Every table: both sides up, views byte-equal, versions agreed, no
  /// needs_refresh, no outstanding acks.
  Status VerifyConverged();

  /// Every table: the chain history has no gaps — committed request_update
  /// count equals on-chain version - 1, each answered by a committed ack.
  Status VerifyAuditGapless();

 private:
  GeneratedScenario() = default;

  Status Bootstrap();
  Result<std::unique_ptr<Peer>> MakePeerObject(size_t i);
  std::string DurableDir(size_t i) const;
  bool Quiescent() const;

  NetworkSpec spec_;
  FaultInjector injector_;
  std::unique_ptr<metrics::MetricsRegistry> metrics_;
  std::unique_ptr<metrics::ProtocolTracer> tracer_;
  std::unique_ptr<threading::ThreadPool> pool_;
  std::unique_ptr<net::Simulator> simulator_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<std::unique_ptr<runtime::ChainNode>> nodes_;
  std::vector<std::unique_ptr<Peer>> peers_;  // null while crashed
  std::vector<crypto::Address> addresses_;
  std::vector<bool> isolated_;
  std::vector<std::string> all_node_ids_;  // chain nodes + peer names
  crypto::Address contract_;
};

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_SCENARIO_GEN_H_
