#include "core/peer.h"

#include "common/logging.h"
#include "common/strings.h"
#include "relational/delta.h"

namespace medsync::core {

using relational::Key;
using relational::Row;
using relational::Table;
using relational::Value;

Peer::Peer(PeerConfig config, net::Scheduler* scheduler,
           net::Network* network, runtime::ChainNode* node)
    : config_(std::move(config)),
      scheduler_(scheduler),
      network_(network),
      node_(node),
      key_(crypto::KeyPair::FromSeed(config_.name)),
      sync_(&database_, config_.strategy) {
  sync_.set_maintenance(config_.maintenance);
  address_to_name_[key_.address().ToHex()] = config_.name;
  if (config_.reliable_delivery) {
    channel_ = std::make_unique<net::ReliableChannel>(
        config_.name, scheduler_, network_, this, config_.reliable);
    channel_->set_give_up_callback([this](const net::Message& message) {
      Trace(StrCat("reliable delivery of '", message.type, "' to ",
                   message.to, " gave up; catch-up will reconcile"));
    });
  }
}

Peer::~Peer() {
  *alive_ = false;
  if (started_) {
    if (channel_ != nullptr) {
      channel_->Detach();
    } else {
      network_->Detach(config_.name);
    }
  }
}

void Peer::Start() {
  if (started_) return;
  started_ = true;
  if (channel_ != nullptr) {
    channel_->Attach();
  } else {
    network_->Attach(config_.name, this);
  }
  node_->SubscribeReceipts(
      [this, alive = alive_](const contracts::Receipt& receipt) {
        if (*alive) OnReceipt(receipt);
      });
  node_->SubscribeEvents(
      [this, alive = alive_](uint64_t height, const contracts::Event& event) {
        if (*alive) OnChainEvent(height, event);
      });
  if (config_.catch_up_interval > 0) ScheduleCatchUp();
}

void Peer::ScheduleCatchUp() {
  scheduler_->Schedule(config_.catch_up_interval, [this, alive = alive_] {
    if (!*alive) return;
    // A failing query just means the chain node is busy or the table is
    // not registered yet; the next tick will try again.
    LogIfError(SyncWithChain().status(), "peer", "catch-up sync");
    ScheduleCatchUp();
  });
}

Status Peer::SendToPeer(const std::string& to, const std::string& type,
                        Json payload) {
  net::Message message{config_.name, to, type, std::move(payload)};
  if (channel_ != nullptr) return channel_->Send(std::move(message));
  return network_->Send(std::move(message));
}

void Peer::AddKnownPeer(const std::string& name,
                        const crypto::Address& address) {
  address_to_name_[address.ToHex()] = name;
}

namespace {
/// Local bookkeeping table recording each shared table's last synced
/// version and digest; lives in the peer's own database so durable peers
/// recover their protocol position across restarts.
constexpr char kSyncStateTable[] = "__medsync_sync_state";

relational::Schema SyncStateSchema() {
  Result<relational::Schema> schema = relational::Schema::Create(
      {{"table_id", relational::DataType::kString, false},
       {"version", relational::DataType::kInt, false},
       {"digest", relational::DataType::kString, true}},
      {"table_id"});
  return std::move(schema).value();
}
}  // namespace

Status Peer::UseDurableStorage(const std::string& dir) {
  if (!tables_.empty() || !database_.TableNames().empty()) {
    return Status::FailedPrecondition(
        "durable storage must be configured before any tables exist");
  }
  MEDSYNC_ASSIGN_OR_RETURN(database_, relational::Database::Open(dir));
  // The freshly opened database replaced the in-memory one; re-attach its
  // WAL to the registry.
  database_.set_metrics(registry_);
  if (!database_.HasTable(kSyncStateTable)) {
    MEDSYNC_RETURN_IF_ERROR(
        database_.CreateTable(kSyncStateTable, SyncStateSchema()));
  }
  Trace(StrCat("using durable storage at ", dir));
  return Status::OK();
}

void Peer::PersistTableState(const TableState& state) {
  if (!database_.HasTable(kSyncStateTable)) return;
  Status persisted = database_.Upsert(
      kSyncStateTable,
      {Value::String(state.config.table_id),
       Value::Int(static_cast<int64_t>(state.version)),
       Value::String(state.digest)});
  if (!persisted.ok()) {
    Trace(StrCat("could not persist sync state: ", persisted.ToString()));
  }
}

void Peer::RestorePersistedState(TableState* state) {
  if (!database_.HasTable(kSyncStateTable)) return;
  Result<const Table*> table = database_.GetTable(kSyncStateTable);
  if (!table.ok()) return;
  std::optional<relational::Row> row =
      (*table)->Get({Value::String(state->config.table_id)});
  if (!row.has_value()) return;
  state->version = static_cast<uint64_t>((*row)[1].AsInt());
  state->digest = (*row)[2].AsString();
}

Result<size_t> Peer::SyncWithChain() {
  size_t behind = 0;
  const std::string self_hex = key_.address().ToHex();
  for (auto& [table_id, state] : tables_) {
    Json params = Json::MakeObject();
    params.Set("table_id", table_id);
    Result<Json> entry = node_->Query(state.config.contract, "get_entry",
                                      params, key_.address());
    if (!entry.ok()) {
      // Not registered yet (or the node is still catching up) — nothing
      // to reconcile for this table.
      continue;
    }
    MEDSYNC_ASSIGN_OR_RETURN(int64_t chain_version, entry->GetInt("version"));
    MEDSYNC_ASSIGN_OR_RETURN(std::string chain_digest,
                             entry->GetString("content_digest"));
    if (static_cast<uint64_t>(chain_version) < state.version) continue;
    if (pending_fetches_.count(table_id) > 0) continue;

    // Same version: usually settled, but a lossy network can wedge the
    // update round here in two ways. A lane reorg may have rewritten which
    // transaction became this version after our receipt fired (receipts
    // are at-most-once, never retracted), leaving us holding content the
    // canonical chain never recorded; and our ack_update transaction may
    // have been dropped or evicted before sealing, leaving us in
    // pending_acks forever. Either wedge denies every future update of the
    // table, so reconcile both.
    const bool reorged = static_cast<uint64_t>(chain_version) ==
                             state.version &&
                         state.digest != chain_digest;
    if (static_cast<uint64_t>(chain_version) == state.version && !reorged) {
      bool self_pending = false;
      if (entry->At("pending_acks").is_array()) {
        for (const Json& pending : entry->At("pending_acks").AsArray()) {
          if (pending.AsString() == self_hex) {
            self_pending = true;
            break;
          }
        }
      }
      if (!self_pending) continue;
      ++behind;
      Trace(StrCat("catch-up: '", table_id, "' version ", state.version,
                   " fetched but the chain still lists us pending; ",
                   "re-acking"));
      LogIfError(SubmitAck(state, state.version, state.digest), "peer",
                 "catch-up re-ack");
      continue;
    }

    std::string updater_hex;
    if (entry->At("last_updater").is_string()) {
      updater_hex = entry->At("last_updater").AsString();
    }
    Result<std::string> updater_name =
        updater_hex == self_hex ? Status::NotFound("self is the updater")
                                : NameOfAddress(updater_hex);
    if (!updater_name.ok()) {
      // Fall back to any other known peer of the table (on a reorg we may
      // BE the stale last updater; a peer that acked holds the canonical
      // content).
      for (const Json& peer_json : entry->At("peers").AsArray()) {
        if (peer_json.AsString() == self_hex) continue;
        updater_name = NameOfAddress(peer_json.AsString());
        if (updater_name.ok()) break;
      }
    }
    if (!updater_name.ok()) {
      Trace(StrCat("behind on '", table_id, "' but no reachable peer"));
      continue;
    }
    ++behind;
    if (reorged) {
      Trace(StrCat("catch-up: '", table_id, "' version ", state.version,
                   " digest diverged from the chain (reorg); re-fetching ",
                   "from ", *updater_name));
    } else {
      Trace(StrCat("catch-up: '", table_id, "' local version ", state.version,
                   " < chain version ", chain_version, "; fetching from ",
                   *updater_name));
    }
    StartFetch(table_id, static_cast<uint64_t>(chain_version), chain_digest,
               *updater_name);
  }
  return behind;
}

void Peer::StartFetch(const std::string& table_id, uint64_t version,
                      const std::string& digest,
                      const std::string& updater_name) {
  PendingFetch fetch;
  fetch.table_id = table_id;
  fetch.version = version;
  fetch.digest = digest;
  fetch.updater_name = updater_name;
  fetch.started_at = scheduler_->Now();
  pending_fetches_[table_id] = fetch;

  Json request = Json::MakeObject();
  request.Set("table_id", table_id);
  request.Set("version", version);
  RecordStep(5, 8, "fetch_request", table_id, "sent");
  LogIfError(SendToPeer(updater_name, "fetch_request", std::move(request)),
             "peer", "fetch request");
  std::string id = table_id;
  scheduler_->Schedule(config_.fetch_retry_delay, [this, alive = alive_, id] {
    if (*alive) RetryFetch(id);
  });
}

Result<std::string> Peer::NameOfAddress(const std::string& addr_hex) const {
  auto it = address_to_name_.find(addr_hex);
  if (it == address_to_name_.end()) {
    return Status::NotFound(StrCat("unknown peer address ", addr_hex));
  }
  return it->second;
}

void Peer::Trace(const std::string& message) {
  MEDSYNC_LOG(kInfo, config_.name) << message;
  if (trace_sink_) {
    trace_sink_(StrCat("[", FormatTimestamp(scheduler_->Now()), "] ",
                       config_.name, ": ", message));
  }
}

void Peer::RecordStep(int figure, int step, std::string action,
                      std::string table, std::string outcome,
                      Micros sim_duration) const {
  if (tracer_ == nullptr) return;
  metrics::StepEvent event;
  event.figure = figure;
  event.step = step;
  event.action = std::move(action);
  event.peer = config_.name;
  event.table = std::move(table);
  event.outcome = std::move(outcome);
  event.at = scheduler_->Now();
  event.sim_duration = sim_duration;
  tracer_->Record(std::move(event));
}

void Peer::SetMetrics(metrics::MetricsRegistry* registry) {
  registry_ = registry;
  sync_.set_metrics(registry);
  database_.set_metrics(registry);
  if (channel_ != nullptr) channel_->set_metrics(registry);
  if (registry == nullptr) {
    counters_ = StatCounters{};
    return;
  }
  counters_.updates_proposed = registry->GetCounter("peer.updates_proposed");
  counters_.updates_committed = registry->GetCounter("peer.updates_committed");
  counters_.updates_denied = registry->GetCounter("peer.updates_denied");
  counters_.fetches_served = registry->GetCounter("peer.fetches_served");
  counters_.fetches_applied = registry->GetCounter("peer.fetches_applied");
  counters_.acks_sent = registry->GetCounter("peer.acks_sent");
  counters_.cascades_proposed = registry->GetCounter("peer.cascades_proposed");
  counters_.cascades_blocked = registry->GetCounter("peer.cascades_blocked");
  counters_.digest_mismatches =
      registry->GetCounter("peer.digest_mismatches");
}

chain::Transaction Peer::MakeTransaction(const crypto::Address& to,
                                         const std::string& method,
                                         Json params) {
  chain::Transaction tx;
  tx.from = key_.address();
  tx.to = to;
  tx.nonce = nonce_++;
  tx.method = method;
  tx.params = std::move(params);
  tx.timestamp = scheduler_->Now();
  tx.Sign(key_);
  return tx;
}

Result<crypto::Address> Peer::DeployMetadataContract() {
  chain::Transaction tx =
      MakeTransaction(crypto::Address::Zero(), "metadata", Json::MakeObject());
  crypto::Address address = contracts::ContractHost::DeploymentAddress(tx);
  MEDSYNC_RETURN_IF_ERROR(node_->SubmitTransaction(std::move(tx)));
  Trace(StrCat("deployed metadata contract at ", address.ToHex()));
  return address;
}

Result<std::string> Peer::RegisterSharedTableOnChain(
    const SharedTableConfig& config,
    const std::vector<crypto::Address>& peer_addresses,
    const std::map<std::string, std::vector<crypto::Address>>&
        write_permission,
    const std::vector<crypto::Address>& membership,
    const crypto::Address& authority) {
  MEDSYNC_ASSIGN_OR_RETURN(const Table* view,
                           database_.GetTable(config.view_table));

  Json peers_json = Json::MakeArray();
  for (const crypto::Address& addr : peer_addresses) {
    peers_json.Append(addr.ToHex());
  }
  Json perm_json = Json::MakeObject();
  for (const auto& [attr, allowed] : write_permission) {
    Json list = Json::MakeArray();
    for (const crypto::Address& addr : allowed) list.Append(addr.ToHex());
    perm_json.Set(attr, std::move(list));
  }
  Json membership_json = Json::MakeArray();
  for (const crypto::Address& addr : membership) {
    membership_json.Append(addr.ToHex());
  }

  Json params = Json::MakeObject();
  params.Set("table_id", config.table_id);
  params.Set("peers", std::move(peers_json));
  params.Set("view_schema", view->schema().ToJson());
  params.Set("write_permission", std::move(perm_json));
  params.Set("membership_permission", std::move(membership_json));
  params.Set("authority", authority.ToHex());
  params.Set("digest", view->ContentDigest());

  chain::Transaction tx =
      MakeTransaction(config.contract, "register_table", std::move(params));
  std::string tx_id = tx.Id().ToHex();
  MEDSYNC_RETURN_IF_ERROR(node_->SubmitTransaction(std::move(tx)));
  Trace(StrCat("registered shared table '", config.table_id,
               "' on-chain (tx ", tx_id.substr(0, 8), ")"));
  return tx_id;
}

Status Peer::AdoptSharedTable(const SharedTableConfig& config) {
  if (tables_.count(config.table_id) > 0) {
    return Status::AlreadyExists(
        StrCat("shared table '", config.table_id, "' already adopted"));
  }
  MEDSYNC_RETURN_IF_ERROR(sync_.RegisterView(
      config.table_id, config.source_table, config.view_table, config.lens));
  MEDSYNC_ASSIGN_OR_RETURN(const Table* view,
                           database_.GetTable(config.view_table));
  TableState state;
  state.config = config;
  state.version = 1;
  state.digest = view->ContentDigest();
  RestorePersistedState(&state);
  PersistTableState(state);
  tables_.emplace(config.table_id, std::move(state));
  return Status::OK();
}

Result<Table> Peer::ReadSharedTable(const std::string& table_id) const {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    RecordStep(4, 1, "read", table_id, "not_found");
    return Status::NotFound(StrCat("no shared table '", table_id, "'"));
  }
  RecordStep(4, 1, "read", table_id, "ok");
  return database_.Snapshot(it->second.config.view_table);
}

Result<Peer::TableSyncState> Peer::GetSyncState(
    const std::string& table_id) const {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no shared table '", table_id, "'"));
  }
  TableSyncState out;
  out.version = it->second.version;
  out.digest = it->second.digest;
  out.needs_refresh = it->second.needs_refresh;
  return out;
}

Status Peer::ProposeViewContent(const std::string& table_id,
                                Table new_view, std::string kind,
                                std::vector<std::string> attributes,
                                bool put_to_source) {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no shared table '", table_id, "'"));
  }
  for (const auto& [tx_id, staged] : staged_) {
    if (staged.table_id == table_id) {
      return Status::FailedPrecondition(
          StrCat("an update to '", table_id, "' is already in flight"));
    }
  }

  StagedUpdate staged;
  staged.table_id = table_id;
  staged.digest = new_view.ContentDigest();
  staged.staged = std::move(new_view);
  staged.kind = kind;
  staged.attributes = attributes;
  staged.put_to_source = put_to_source;
  staged.proposed_at = scheduler_->Now();
  RecordStep(5, 1, kind, table_id, "staged");

  Json attrs_json = Json::MakeArray();
  for (const std::string& attr : attributes) attrs_json.Append(attr);
  Json params = Json::MakeObject();
  params.Set("table_id", table_id);
  params.Set("kind", kind);
  params.Set("attributes", std::move(attrs_json));
  params.Set("digest", staged.digest);

  chain::Transaction tx = MakeTransaction(it->second.config.contract,
                                          "request_update", std::move(params));
  std::string tx_id = tx.Id().ToHex();
  MEDSYNC_RETURN_IF_ERROR(node_->SubmitTransaction(std::move(tx)));

  ++stats_.updates_proposed;
  metrics::Inc(counters_.updates_proposed);
  RecordStep(5, 2, "request_update", table_id, "submitted");
  Trace(StrCat("proposed ", kind, " of '", table_id, "' [",
               Join(attributes, ","), "] (tx ", tx_id.substr(0, 8), ")"));
  staged_.emplace(tx_id, std::move(staged));
  return Status::OK();
}

Status Peer::UpdateSourceAndPropagate(
    const std::string& source_table,
    const std::function<Status(relational::Database*)>& mutation) {
  MEDSYNC_ASSIGN_OR_RETURN(Table before, database_.Snapshot(source_table));
  MEDSYNC_RETURN_IF_ERROR(mutation(&database_));
  Trace(StrCat("updated local source '", source_table,
               "', checking shared views"));
  CascadeAfterSourceChange(source_table, before, /*exclude_table_id=*/"",
                           /*fig5_step=*/6);
  return Status::OK();
}

Status Peer::UpdateSharedAttribute(const std::string& table_id,
                                   const Key& key,
                                   const std::string& attribute,
                                   Value value) {
  RecordStep(4, 1, "update", table_id, "requested");
  MEDSYNC_ASSIGN_OR_RETURN(Table staged, ReadSharedTable(table_id));
  MEDSYNC_RETURN_IF_ERROR(staged.UpdateAttribute(key, attribute, value));
  return ProposeViewContent(table_id, std::move(staged), "update",
                            {attribute}, /*put_to_source=*/true);
}

Status Peer::InsertSharedRow(const std::string& table_id, Row row) {
  RecordStep(4, 1, "create", table_id, "requested");
  MEDSYNC_ASSIGN_OR_RETURN(Table staged, ReadSharedTable(table_id));
  MEDSYNC_RETURN_IF_ERROR(staged.Insert(std::move(row)));
  return ProposeViewContent(table_id, std::move(staged), "insert", {},
                            /*put_to_source=*/true);
}

Status Peer::DeleteSharedRow(const std::string& table_id, const Key& key) {
  RecordStep(4, 1, "delete", table_id, "requested");
  MEDSYNC_ASSIGN_OR_RETURN(Table staged, ReadSharedTable(table_id));
  MEDSYNC_RETURN_IF_ERROR(staged.Delete(key));
  return ProposeViewContent(table_id, std::move(staged), "delete", {},
                            /*put_to_source=*/true);
}

Result<std::string> Peer::SubmitChangePermission(const std::string& table_id,
                                                 const std::string& attribute,
                                                 const crypto::Address& peer,
                                                 bool grant) {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no shared table '", table_id, "'"));
  }
  Json params = Json::MakeObject();
  params.Set("table_id", table_id);
  params.Set("attribute", attribute);
  params.Set("peer", peer.ToHex());
  params.Set("grant", grant);
  chain::Transaction tx = MakeTransaction(it->second.config.contract,
                                          "change_permission",
                                          std::move(params));
  std::string tx_id = tx.Id().ToHex();
  MEDSYNC_RETURN_IF_ERROR(node_->SubmitTransaction(std::move(tx)));
  Trace(StrCat(grant ? "granting" : "revoking", " write on '", attribute,
               "' of '", table_id, "' for ", peer.ToHex()));
  return tx_id;
}

void Peer::OnReceipt(const contracts::Receipt& receipt) {
  auto it = staged_.find(receipt.tx_id);
  if (it == staged_.end()) return;
  StagedUpdate staged = std::move(it->second);
  staged_.erase(it);

  const Micros decision_span = scheduler_->Now() - staged.proposed_at;
  if (!receipt.ok) {
    ++stats_.updates_denied;
    metrics::Inc(counters_.updates_denied);
    RecordStep(5, 3, "decision", staged.table_id, "denied", decision_span);
    auto table_it = tables_.find(staged.table_id);
    if (table_it != tables_.end() && staged.put_to_source == false) {
      // A cascade the contract refused: the local source is newer than the
      // shared view and must stay flagged until permission arrives.
      table_it->second.needs_refresh = true;
      LogIfError(sync_.SetViewStale(staged.table_id, true), "peer",
                 "stale flag on denied update");
    }
    Trace(StrCat("update of '", staged.table_id,
                 "' DENIED by contract: ", receipt.error));
    return;
  }
  RecordStep(5, 3, "decision", staged.table_id, "approved", decision_span);
  FinalizeApprovedUpdate(std::move(staged));
}

void Peer::FinalizeApprovedUpdate(StagedUpdate staged) {
  auto table_it = tables_.find(staged.table_id);
  if (table_it == tables_.end()) return;
  TableState& state = table_it->second;

  Status applied = sync_.ApplyViewContent(staged.table_id, staged.staged);
  if (!applied.ok()) {
    Trace(StrCat("FAILED to apply approved update locally: ",
                 applied.ToString()));
    return;
  }
  state.version += 1;
  state.digest = staged.digest;
  state.needs_refresh = false;
  LogIfError(sync_.SetViewStale(staged.table_id, false), "peer",
             "stale flag clear on commit");
  PersistTableState(state);
  ++stats_.updates_committed;
  metrics::Inc(counters_.updates_committed);
  RecordStep(5, 4, "commit", staged.table_id, "committed");
  Trace(StrCat("update of '", staged.table_id, "' committed as version ",
               state.version));

  if (staged.put_to_source) {
    const std::string source = state.config.source_table;
    Result<Table> before = database_.Snapshot(source);
    Result<bx::SourceChange> change = sync_.PutViewIntoSource(staged.table_id);
    if (!change.ok()) {
      RecordStep(5, 5, "bx_put", staged.table_id, "failed");
      Trace(StrCat("BX put into '", source,
                   "' failed: ", change.status().ToString()));
      return;
    }
    RecordStep(5, 5, "bx_put", staged.table_id, "ok");
    Trace(StrCat("BX put reflected '", staged.table_id, "' into source '",
                 source, "'"));
    if (before.ok()) {
      CascadeAfterSourceChange(source, *before, staged.table_id,
                               /*fig5_step=*/6);
    }
  }
}

void Peer::CascadeAfterSourceChange(const std::string& source_table,
                                    const Table& before,
                                    const std::string& exclude_table_id,
                                    int fig5_step) {
  const Micros check_start = scheduler_->Now();
  Result<std::vector<ViewRefresh>> refreshes =
      sync_.FindAffectedViews(source_table, before, exclude_table_id);
  const Micros check_span = scheduler_->Now() - check_start;
  if (!refreshes.ok()) {
    RecordStep(5, fig5_step, "dependency_check", source_table, "failed",
               check_span);
    Trace(StrCat("dependency check failed: ", refreshes.status().ToString()));
    return;
  }
  RecordStep(5, fig5_step, "dependency_check", source_table,
             StrCat("affected=", refreshes->size()), check_span);
  if (refreshes->empty()) {
    Trace(StrCat("dependency check: no other views of '", source_table,
                 "' affected"));
    return;
  }
  for (ViewRefresh& refresh : *refreshes) {
    // Classify against the WRITTEN attributes (values changed in existing
    // rows): inserted/deleted rows are governed by membership permission
    // alone, matching the contract's entry-level Create/Delete semantics.
    std::string kind;
    if (refresh.membership_changed && !refresh.written_attributes.empty()) {
      kind = "replace";
    } else if (refresh.membership_changed) {
      // Pure membership change: classify as insert/delete by row count.
      auto current = ReadSharedTable(refresh.table_id);
      kind = (current.ok() &&
              refresh.new_view.row_count() >= current->row_count())
                 ? "insert"
                 : "delete";
    } else {
      kind = "update";
    }
    Trace(StrCat("dependency check: view '", refresh.table_id,
                 "' affected, proposing ", kind));
    Status proposed =
        ProposeViewContent(refresh.table_id, std::move(refresh.new_view),
                           kind, refresh.written_attributes,
                           /*put_to_source=*/false);
    if (proposed.ok()) {
      ++stats_.cascades_proposed;
      metrics::Inc(counters_.cascades_proposed);
    } else {
      ++stats_.cascades_blocked;
      metrics::Inc(counters_.cascades_blocked);
      auto it = tables_.find(refresh.table_id);
      if (it != tables_.end()) it->second.needs_refresh = true;
      LogIfError(sync_.SetViewStale(refresh.table_id, true), "peer",
                 "stale flag on blocked cascade");
      Trace(StrCat("cascade to '", refresh.table_id,
                   "' blocked: ", proposed.ToString()));
    }
  }
}

void Peer::OnChainEvent(uint64_t height, const contracts::Event& event) {
  (void)height;
  if (event.name == "UpdateCommitted") {
    HandleUpdateCommitted(event.payload);
  }
}

void Peer::HandleUpdateCommitted(const Json& payload) {
  auto table_id = payload.GetString("table_id");
  if (!table_id.ok() || tables_.count(*table_id) == 0) return;
  auto updater = payload.GetString("updater");
  auto version = payload.GetInt("version");
  auto digest = payload.GetString("digest");
  if (!updater.ok() || !version.ok() || !digest.ok()) return;

  if (*updater == key_.address().ToHex()) return;  // own update

  Result<std::string> updater_name = NameOfAddress(*updater);
  if (!updater_name.ok()) {
    Trace(StrCat("cannot fetch '", *table_id, "': unknown updater ",
                 *updater));
    return;
  }
  Trace(StrCat("notified: '", *table_id, "' updated to version ", *version,
               " by ", *updater_name, "; fetching"));
  RecordStep(5, 7, "notified", *table_id, "fetching");

  StartFetch(*table_id, static_cast<uint64_t>(*version), *digest,
             *updater_name);
}

void Peer::RetryFetch(const std::string& table_id) {
  auto it = pending_fetches_.find(table_id);
  if (it == pending_fetches_.end()) return;  // satisfied
  PendingFetch& fetch = it->second;
  if (++fetch.retries > config_.max_fetch_retries) {
    Trace(StrCat("giving up fetching '", table_id, "' after ",
                 fetch.retries - 1,
                 " retries; stale until the next catch-up tick"));
    auto table_it = tables_.find(table_id);
    if (table_it != tables_.end()) table_it->second.needs_refresh = true;
    LogIfError(sync_.SetViewStale(table_id, true), "peer",
               "stale flag on fetch give-up");
    pending_fetches_.erase(it);
    return;
  }
  Json request = Json::MakeObject();
  request.Set("table_id", table_id);
  request.Set("version", fetch.version);
  LogIfError(
      SendToPeer(fetch.updater_name, "fetch_request", std::move(request)),
      "peer", "fetch retry");
  scheduler_->Schedule(config_.fetch_retry_delay,
                       [this, alive = alive_, table_id] {
                         if (*alive) RetryFetch(table_id);
                       });
}

void Peer::OnMessage(const net::Message& message) {
  if (message.type == "fetch_request") {
    HandleFetchRequest(message);
  } else if (message.type == "fetch_response") {
    HandleFetchResponse(message);
  } else if (message.type == "share_offer") {
    HandleShareOffer(message);
  } else if (message.type == "share_answer") {
    HandleShareAnswer(message);
  } else {
    MEDSYNC_LOG(kDebug, config_.name)
        << "ignoring message type '" << message.type << "'";
  }
}

void Peer::HandleFetchRequest(const net::Message& message) {
  auto table_id = message.payload.GetString("table_id");
  if (!table_id.ok()) return;
  auto table_it = tables_.find(*table_id);
  if (table_it == tables_.end()) return;

  // Serve the staged content if the requested update has not been
  // finalized locally yet, otherwise the committed view table.
  const Table* content = nullptr;
  Table committed;
  for (const auto& [tx_id, staged] : staged_) {
    if (staged.table_id == *table_id) {
      content = &staged.staged;
      break;
    }
  }
  if (content == nullptr) {
    Result<Table> snapshot =
        database_.Snapshot(table_it->second.config.view_table);
    if (!snapshot.ok()) return;
    committed = std::move(*snapshot);
    content = &committed;
  }

  ++stats_.fetches_served;
  metrics::Inc(counters_.fetches_served);
  Json response = Json::MakeObject();
  response.Set("table_id", *table_id);
  response.Set("version", table_it->second.version);
  response.Set("digest", content->ContentDigest());
  response.Set("contents", content->ToJson());
  LogIfError(SendToPeer(message.from, "fetch_response", std::move(response)),
             "peer", "fetch response");
}

void Peer::HandleFetchResponse(const net::Message& message) {
  auto table_id = message.payload.GetString("table_id");
  if (!table_id.ok()) return;
  auto fetch_it = pending_fetches_.find(*table_id);
  if (fetch_it == pending_fetches_.end()) return;  // stale response

  auto digest = message.payload.GetString("digest");
  if (!digest.ok()) return;
  if (*digest != fetch_it->second.digest) {
    // The updater has not finalized yet or sent stale data; the retry
    // timer will ask again.
    ++stats_.digest_mismatches;
    metrics::Inc(counters_.digest_mismatches);
    return;
  }
  Result<Table> content = Table::FromJson(message.payload.At("contents"));
  if (!content.ok()) {
    Trace(StrCat("bad fetch response for '", *table_id,
                 "': ", content.status().ToString()));
    return;
  }
  if (content->ContentDigest() != *digest) {
    ++stats_.digest_mismatches;
    metrics::Inc(counters_.digest_mismatches);
    RecordStep(5, 9, "verify_fetch", *table_id, "digest_mismatch");
    Trace(StrCat("fetch response for '", *table_id,
                 "' fails digest verification; rejecting"));
    return;
  }
  PendingFetch fetch = fetch_it->second;
  pending_fetches_.erase(fetch_it);
  Status applied = ApplyFetchedUpdate(*table_id, *content, fetch.version,
                                      fetch.digest, fetch.started_at);
  if (!applied.ok()) {
    Trace(StrCat("applying fetched update of '", *table_id,
                 "' failed: ", applied.ToString()));
  }
}

Status Peer::ApplyFetchedUpdate(const std::string& table_id,
                                const Table& content, uint64_t version,
                                const std::string& digest,
                                Micros started_at) {
  auto table_it = tables_.find(table_id);
  if (table_it == tables_.end()) {
    return Status::NotFound(StrCat("no shared table '", table_id, "'"));
  }
  TableState& state = table_it->second;

  MEDSYNC_RETURN_IF_ERROR(sync_.ApplyViewContent(table_id, content));
  state.version = version;
  state.digest = digest;
  // A successfully fetched update supersedes any earlier give-up: the view
  // now matches the chain, so it is no longer stale.
  state.needs_refresh = false;
  LogIfError(sync_.SetViewStale(table_id, false), "peer",
             "stale flag clear on fetch apply");
  PersistTableState(state);
  ++stats_.fetches_applied;
  metrics::Inc(counters_.fetches_applied);
  RecordStep(5, 9, "apply_fetch", table_id, "applied",
             scheduler_->Now() - started_at);
  Trace(StrCat("fetched and applied '", table_id, "' version ", version));

  // Reflect the change into the local source via the BX program.
  const std::string source = state.config.source_table;
  MEDSYNC_ASSIGN_OR_RETURN(Table before, database_.Snapshot(source));
  Result<bx::SourceChange> change = sync_.PutViewIntoSource(table_id);
  if (!change.ok()) {
    Trace(StrCat("BX put of fetched '", table_id, "' into '", source,
                 "' failed: ", change.status().ToString()));
    // Still ack: we do hold the newest shared data, even though the local
    // source rejected the merge (an operator has to reconcile).
  } else {
    Trace(StrCat("BX put reflected fetched '", table_id, "' into source '",
                 source, "'"));
  }

  // Ack on-chain so the update round can complete (Fig. 4 step 5/6).
  MEDSYNC_RETURN_IF_ERROR(SubmitAck(state, version, digest));
  Trace(StrCat("acked '", table_id, "' version ", version, " on-chain"));

  if (change.ok()) {
    CascadeAfterSourceChange(source, before, table_id, /*fig5_step=*/11);
  }
  return Status::OK();
}

Status Peer::SubmitAck(const TableState& state, uint64_t version,
                       const std::string& digest) {
  Json params = Json::MakeObject();
  params.Set("table_id", state.config.table_id);
  params.Set("version", version);
  params.Set("digest", digest);
  chain::Transaction tx =
      MakeTransaction(state.config.contract, "ack_update", std::move(params));
  MEDSYNC_RETURN_IF_ERROR(node_->SubmitTransaction(std::move(tx)));
  ++stats_.acks_sent;
  metrics::Inc(counters_.acks_sent);
  RecordStep(5, 10, "ack_update", state.config.table_id, "submitted");
  return Status::OK();
}


Status Peer::OfferSharedTable(const std::string& counterparty_name,
                              OfferParams params) {
  if (tables_.count(params.table_id) > 0) {
    return Status::AlreadyExists(
        StrCat("shared table '", params.table_id, "' already adopted"));
  }
  if (pending_offers_.count(params.table_id) > 0) {
    return Status::FailedPrecondition(
        StrCat("an offer for '", params.table_id, "' is already pending"));
  }
  if (params.lens == nullptr) {
    return Status::InvalidArgument("offer lens must not be null");
  }
  if (!network_->IsAttached(counterparty_name)) {
    return Status::NotFound(
        StrCat("no peer '", counterparty_name, "' on the network"));
  }
  MEDSYNC_ASSIGN_OR_RETURN(Table contents,
                           database_.Snapshot(params.view_table));

  Json offer = Json::MakeObject();
  offer.Set("table_id", params.table_id);
  offer.Set("contract", params.contract.ToHex());
  offer.Set("provider_name", config_.name);
  offer.Set("provider", key_.address().ToHex());
  offer.Set("contents", contents.ToJson());

  std::string table_id = params.table_id;
  pending_offers_.emplace(
      table_id, PendingOffer{std::move(params), counterparty_name});
  Trace(StrCat("offered shared table '", table_id, "' to ",
               counterparty_name));
  return SendToPeer(counterparty_name, "share_offer", std::move(offer));
}

void Peer::HandleShareOffer(const net::Message& message) {
  auto reply = [&](const std::string& table_id, bool accepted,
                   const std::string& reason) {
    Json answer = Json::MakeObject();
    answer.Set("table_id", table_id);
    answer.Set("accepted", accepted);
    answer.Set("reason", reason);
    answer.Set("invitee", key_.address().ToHex());
    LogIfError(SendToPeer(message.from, "share_answer", std::move(answer)),
               "peer", "share answer");
  };

  auto table_id = message.payload.GetString("table_id");
  if (!table_id.ok()) return;
  auto contract_hex = message.payload.GetString("contract");
  auto provider_name = message.payload.GetString("provider_name");
  auto provider_hex = message.payload.GetString("provider");
  Result<Table> contents = Table::FromJson(message.payload.At("contents"));
  if (!contract_hex.ok() || !provider_name.ok() || !provider_hex.ok() ||
      !contents.ok()) {
    reply(*table_id, false, "malformed offer");
    return;
  }
  if (offer_policy_ == nullptr) {
    Trace(StrCat("declined share offer '", *table_id,
                 "': no acceptance policy configured"));
    reply(*table_id, false, "no acceptance policy");
    return;
  }
  if (tables_.count(*table_id) > 0) {
    reply(*table_id, false, "table already adopted");
    return;
  }

  ShareOffer offer;
  offer.table_id = *table_id;
  bool ok = false;
  offer.contract = crypto::Address::FromHex(*contract_hex, &ok);
  offer.provider_name = *provider_name;
  offer.provider = crypto::Address::FromHex(*provider_hex, &ok);
  offer.view_schema = contents->schema();
  offer.contents = *contents;

  Result<ShareAcceptance> acceptance = offer_policy_(offer);
  if (!acceptance.ok()) {
    Trace(StrCat("declined share offer '", *table_id,
                 "': ", acceptance.status().ToString()));
    reply(*table_id, false, acceptance.status().ToString());
    return;
  }

  // Validate the binding: the lens applied to OUR source must produce the
  // offered view schema.
  auto validate_and_adopt = [&]() -> Status {
    if (acceptance->lens == nullptr) {
      return Status::InvalidArgument("policy returned a null lens");
    }
    MEDSYNC_ASSIGN_OR_RETURN(const Table* source,
                             database_.GetTable(acceptance->source_table));
    MEDSYNC_ASSIGN_OR_RETURN(relational::Schema expected,
                             acceptance->lens->ViewSchema(source->schema()));
    if (expected != contents->schema()) {
      return Status::InvalidArgument(
          "lens view schema does not match the offered table");
    }
    if (database_.HasTable(acceptance->view_table)) {
      return Status::AlreadyExists(
          StrCat("local table '", acceptance->view_table, "' exists"));
    }
    MEDSYNC_RETURN_IF_ERROR(
        database_.CreateTable(acceptance->view_table, contents->schema()));
    MEDSYNC_RETURN_IF_ERROR(
        database_.ReplaceTable(acceptance->view_table, *contents));

    SharedTableConfig config;
    config.table_id = *table_id;
    config.source_table = acceptance->source_table;
    config.view_table = acceptance->view_table;
    config.lens = acceptance->lens;
    config.contract = offer.contract;
    MEDSYNC_RETURN_IF_ERROR(AdoptSharedTable(config));

    // Initialize our full data from the shared piece (the BX put inserts
    // the offered rows; hidden attributes default to NULL).
    Result<bx::SourceChange> change = sync_.PutViewIntoSource(*table_id);
    if (!change.ok()) {
      return change.status().WithPrefix("initial put into local source");
    }
    return Status::OK();
  };

  Status adopted = validate_and_adopt();
  if (!adopted.ok()) {
    // Roll back partial adoption so a later offer can retry cleanly.
    tables_.erase(*table_id);
    Trace(StrCat("could not adopt share offer '", *table_id,
                 "': ", adopted.ToString()));
    reply(*table_id, false, adopted.ToString());
    return;
  }
  AddKnownPeer(offer.provider_name, offer.provider);
  Trace(StrCat("accepted share offer '", *table_id, "' from ",
               offer.provider_name));
  reply(*table_id, true, "");
}

void Peer::HandleShareAnswer(const net::Message& message) {
  auto table_id = message.payload.GetString("table_id");
  auto accepted = message.payload.GetBool("accepted");
  if (!table_id.ok() || !accepted.ok()) return;
  auto offer_it = pending_offers_.find(*table_id);
  if (offer_it == pending_offers_.end()) return;
  PendingOffer offer = std::move(offer_it->second);
  pending_offers_.erase(offer_it);

  if (!*accepted) {
    Trace(StrCat("share offer '", *table_id, "' declined by ", message.from,
                 ": ", message.payload.At("reason").is_string()
                           ? message.payload.At("reason").AsString()
                           : ""));
    return;
  }
  auto invitee_hex = message.payload.GetString("invitee");
  if (!invitee_hex.ok()) return;
  bool ok = false;
  crypto::Address invitee = crypto::Address::FromHex(*invitee_hex, &ok);
  if (!ok) return;
  AddKnownPeer(message.from, invitee);

  SharedTableConfig config;
  config.table_id = offer.params.table_id;
  config.source_table = offer.params.source_table;
  config.view_table = offer.params.view_table;
  config.lens = offer.params.lens;
  config.contract = offer.params.contract;
  Status adopted = AdoptSharedTable(config);
  if (!adopted.ok()) {
    Trace(StrCat("cannot adopt own offered table '", *table_id,
                 "': ", adopted.ToString()));
    return;
  }

  std::vector<crypto::Address> peers{key_.address(), invitee};
  crypto::Address authority = offer.params.authority.IsZero()
                                  ? key_.address()
                                  : offer.params.authority;
  Result<std::string> registered = RegisterSharedTableOnChain(
      config, peers, offer.params.write_permission, offer.params.membership,
      authority);
  if (!registered.ok()) {
    Trace(StrCat("registration of '", *table_id,
                 "' failed: ", registered.status().ToString()));
    return;
  }
  Trace(StrCat("share offer '", *table_id, "' accepted by ", message.from,
               "; registered on-chain"));
}

}  // namespace medsync::core
