#ifndef MEDSYNC_CORE_SYNC_MANAGER_H_
#define MEDSYNC_CORE_SYNC_MANAGER_H_

#include <map>
#include <string>
#include <vector>

#include "bx/lens.h"
#include "bx/overlap.h"
#include "relational/database.h"
#include "relational/delta.h"

namespace medsync::threading {
class ThreadPool;
}  // namespace medsync::threading

namespace medsync::core {

/// How a peer decides whether OTHER views of the same source need
/// re-derivation after a put (step 6 of the paper's Fig. 5). An ablation
/// knob: see bench_fig5_cascade.
enum class DependencyStrategy {
  /// Re-run get for every sibling view and diff against its current
  /// materialization. Always correct; costs one get per sibling.
  kAlwaysRederive,
  /// First run the static/dynamic overlap analysis (bx/overlap.h) on the
  /// concrete source change; only views the change can reach are re-derived.
  kAnalyzeChange,
};

/// How affected sibling views are re-materialized once the dependency
/// check decides they changed.
enum class ViewMaintenance {
  /// Translate the source delta through the lens (Lens::PushDelta) and
  /// apply the resulting view delta — O(|delta| log n) per view. Lenses
  /// without an exact translation (and views marked stale) fall back to
  /// the full get, counted in sync.full_fallbacks.
  kIncremental,
  /// Always re-derive with a full lens get and swap the whole table
  /// (the pre-incremental behavior; kept as the correctness oracle).
  kFullGet,
};

/// A sibling view whose content changed after a source update and must be
/// propagated to its sharing peers.
struct ViewRefresh {
  std::string table_id;
  relational::Table new_view;
  /// The delta taking the current materialization to `new_view` (what
  /// cascade step 6 actually ships in incremental mode).
  relational::TableDelta delta;
  /// Full change analysis (view-schema names): attributes whose values
  /// changed in surviving rows plus the non-null attributes of inserted
  /// and deleted rows. Feeds overlap analysis and reporting.
  std::vector<std::string> changed_attributes;
  /// The attributes the update actually WROTE values into existing rows
  /// of: update-changed attributes only. This is what the permission
  /// contract checks — inserted/deleted rows are governed by the
  /// membership permission, not per-attribute write permissions.
  std::vector<std::string> written_attributes;
  /// Whether rows were inserted/deleted.
  bool membership_changed = false;
};

/// The "Database manager" box of the paper's Fig. 2: owns the association
/// between a peer's local source tables and shared views, executes the BX
/// programs in both directions against the local Database, and implements
/// the dependency check.
///
/// SyncManager is purely local (no chain, no network) so the BX
/// orchestration is unit-testable in isolation; Peer layers the on-chain
/// protocol on top.
class SyncManager {
 public:
  /// `database` must outlive the manager.
  SyncManager(relational::Database* database, DependencyStrategy strategy);

  /// Parallelizes the sibling-view scans of FindAffectedViews across
  /// `pool` (which must outlive the manager; null = serial). During the
  /// parallel phase the database is only READ (lens gets/delta pushes,
  /// table compares), so the non-synchronized Database is safe to share;
  /// results are merged back in table-id order, making output and
  /// counters independent of pool size.
  void set_thread_pool(threading::ThreadPool* pool) { pool_ = pool; }

  /// Associates shared table `table_id` with `view_table` (its local
  /// materialization), derived from `source_table` through `lens`. Both
  /// tables must already exist in the database, and the lens's view schema
  /// must match the view table's schema.
  Status RegisterView(const std::string& table_id,
                      const std::string& source_table,
                      const std::string& view_table, bx::LensPtr lens);

  bool HasView(const std::string& table_id) const;
  std::vector<std::string> ViewIds() const;

  /// get: derives fresh view content for `table_id` from its source.
  Result<relational::Table> DeriveView(const std::string& table_id) const;

  /// Refreshes the materialized view table from the source (get +
  /// ReplaceTable).
  Status MaterializeView(const std::string& table_id);

  /// put: writes the CURRENT materialized view content back into the
  /// source table. In incremental mode the source change is committed as
  /// a delta (WAL-logs O(|delta|) instead of the whole table); in full
  /// mode it is a ReplaceTable. Returns the source change that resulted.
  Result<bx::SourceChange> PutViewIntoSource(const std::string& table_id);

  /// The Fig. 5 step-6 dependency check: given that `source_table` changed
  /// from `before` to its current database content, finds every OTHER
  /// registered view of that source (excluding `exclude_table_id`) whose
  /// derived content now differs from its materialization. Does NOT apply
  /// anything — the caller owns propagation (permissions may deny it).
  ///
  /// Computes ONE source delta (ComputeDelta(before, after)); in
  /// incremental mode each sibling translates it through Lens::PushDelta
  /// instead of running a full get, falling back to the full get when the
  /// lens has no exact translation or the view is marked stale.
  Result<std::vector<ViewRefresh>> FindAffectedViews(
      const std::string& source_table, const relational::Table& before,
      const std::string& exclude_table_id);

  /// Applies a refresh produced by FindAffectedViews to the materialized
  /// view table: the delta in incremental mode, the full new_view in full
  /// mode.
  Status ApplyRefresh(const ViewRefresh& refresh);

  /// Applies full replacement content (e.g. a fetched remote update) to
  /// the materialized view table. In incremental mode the content is
  /// diffed against the current materialization and committed as a delta.
  Status ApplyViewContent(const std::string& table_id,
                          const relational::Table& content);

  /// Marks `table_id`'s materialization as lagging its source (a blocked
  /// or failed propagation). A stale view is excluded from the
  /// incremental path — its content no longer equals Get(source-before),
  /// so applying a pushed delta would silently preserve the stale rows;
  /// the full get heals it instead.
  Status SetViewStale(const std::string& table_id, bool stale);

  DependencyStrategy strategy() const { return strategy_; }
  void set_strategy(DependencyStrategy strategy) { strategy_ = strategy; }

  /// Online BX law oracle ("paranoid mode", bx/laws.h): when enabled, every
  /// PutViewIntoSource re-checks PutGet for the lens on the exact
  /// (source, view) pair before committing, and every rederivation (
  /// DeriveView and the full-get path of FindAffectedViews) re-checks
  /// GetPut on the source it derived from. A violation fails the operation
  /// with a "BX law oracle"-prefixed FailedPrecondition carrying the diff —
  /// a law-breaking lens is caught at the first put/get instead
  /// of desynchronizing peers. Costs one extra put+get per checked
  /// operation; defaults ON when built with -DMEDSYNC_CHECK_BX_LAWS=ON
  /// (debug builds), OFF otherwise.
  void set_check_bx_laws(bool check) { check_bx_laws_ = check; }
  bool check_bx_laws() const { return check_bx_laws_; }

#ifdef MEDSYNC_CHECK_BX_LAWS
  static constexpr bool kCheckBxLawsDefault = true;
#else
  static constexpr bool kCheckBxLawsDefault = false;
#endif

  ViewMaintenance maintenance() const { return maintenance_; }
  void set_maintenance(ViewMaintenance maintenance) {
    maintenance_ = maintenance;
  }

  /// Number of lens get evaluations skipped by the analyze strategy since
  /// construction (the ablation's measured quantity).
  uint64_t gets_skipped() const { return gets_skipped_; }
  uint64_t gets_executed() const { return gets_executed_; }
  /// Sibling refreshes resolved through Lens::PushDelta, and the times
  /// the incremental path had to fall back to a full get.
  uint64_t delta_pushes() const { return delta_pushes_; }
  uint64_t full_fallbacks() const { return full_fallbacks_; }

  /// Attaches sync.gets_executed / sync.gets_skipped / sync.puts /
  /// sync.delta_pushes / sync.full_fallbacks counters, the
  /// sync.affected_views histogram (recorded once per dependency check),
  /// and the sync.source_delta_rows / sync.view_delta_rows delta-size
  /// histograms. The registry must outlive the manager; nullptr detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

  struct ViewBinding {
    std::string table_id;
    std::string source_table;
    std::string view_table;
    bx::LensPtr lens;
    /// See SetViewStale.
    bool stale = false;
  };
  Result<const ViewBinding*> FindBinding(const std::string& table_id) const;

 private:
  relational::Database* database_;
  DependencyStrategy strategy_;
  ViewMaintenance maintenance_ = ViewMaintenance::kIncremental;
  bool check_bx_laws_ = kCheckBxLawsDefault;
  threading::ThreadPool* pool_ = nullptr;
  std::map<std::string, ViewBinding> views_;
  uint64_t gets_skipped_ = 0;
  uint64_t gets_executed_ = 0;
  uint64_t delta_pushes_ = 0;
  uint64_t full_fallbacks_ = 0;

  metrics::Counter* gets_executed_counter_ = nullptr;
  metrics::Counter* gets_skipped_counter_ = nullptr;
  metrics::Counter* puts_counter_ = nullptr;
  metrics::Counter* delta_pushes_counter_ = nullptr;
  metrics::Counter* full_fallbacks_counter_ = nullptr;
  metrics::Histogram* affected_views_ = nullptr;
  metrics::Histogram* source_delta_rows_ = nullptr;
  metrics::Histogram* view_delta_rows_ = nullptr;
};

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_SYNC_MANAGER_H_
