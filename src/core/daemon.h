#ifndef MEDSYNC_CORE_DAEMON_H_
#define MEDSYNC_CORE_DAEMON_H_

#include <memory>
#include <string>

#include "common/json.h"
#include "common/metrics/metrics.h"
#include "common/result.h"
#include "core/peer.h"
#include "net/network.h"
#include "net/scheduler.h"
#include "runtime/daemon.h"

namespace medsync::core {

/// Which clinic stakeholder this process plays. Doctor/patient/researcher
/// each host one chain node plus their Peer; the observer hosts only the
/// fourth chain node (a pure authority, completing the PoA set).
enum class ClinicRole { kDoctor, kPatient, kResearcher, kObserver };

Result<ClinicRole> ParseClinicRole(std::string_view name);
std::string ClinicRoleName(ClinicRole role);

struct ClinicDaemonOptions {
  ClinicRole role = ClinicRole::kObserver;
  size_t chain_node_count = 4;
  Micros block_interval = 500 * kMicrosPerMilli;
  /// Script state-machine poll cadence.
  Micros tick_interval = 50 * kMicrosPerMilli;
  /// Give up (failed() becomes true) if not converged by then.
  Micros timeout = 120 * kMicrosPerSecond;
  Micros genesis_timestamp = SimClock::kDefaultEpoch;
};

/// One multi-process clinic deployment member: hosts a chain node (plus,
/// for the three stakeholder roles, a Peer with its Fig. 1 data slice and
/// adopted shared tables) over any Scheduler/Network pair, and drives this
/// role's part of the Fig. 5 cascade to convergence:
///
///   doctor      deploys the metadata contract, registers both shared
///               tables, then — once the researcher's mechanism-of-action
///               update has committed — updates the dosage toward the
///               patient (Fig. 5 steps 7-11);
///   researcher  waits for the registration to appear on-chain, then
///               updates MechanismOfAction in D2 (steps 1-6);
///   patient     receives the cascade;
///   observer    seals its share of blocks.
///
/// Deterministic identities (key seeds, contract address = f(doctor, nonce
/// 0)) let every process bootstrap independently: no RPC coordination, the
/// chain itself is the rendezvous. Convergence = both contract entries at
/// version 2 with no pending acks, peer idle, mempool empty.
class ClinicDaemon {
 public:
  static Result<std::unique_ptr<ClinicDaemon>> Create(
      const ClinicDaemonOptions& options, net::Scheduler* scheduler,
      net::Network* network);

  ~ClinicDaemon();

  ClinicDaemon(const ClinicDaemon&) = delete;
  ClinicDaemon& operator=(const ClinicDaemon&) = delete;

  /// Starts the chain node, the peer, and the script ticks.
  void Start();

  bool converged() const { return converged_; }
  bool failed() const { return !failure_.ok(); }
  const Status& failure() const { return failure_; }

  /// Everything the loopback harness and the equivalence test compare:
  /// entry versions, shared-table content digests (keyed by on-chain table
  /// id so counterpart views compare directly), the transport-invariant
  /// audit-trail projection, timings, and net/chain stats. The "compare"
  /// sub-object is deliberately free of tx ids, heights, and timestamps —
  /// it must be byte-identical between simulated and wall-clock runs.
  Json Report();

  runtime::ChainNode& chain_node() { return node_daemon_->node(); }
  Peer* peer() { return peer_.get(); }
  metrics::MetricsRegistry& metrics() { return *metrics_; }

  /// The network ids hosted by the process playing `role` (its chain node,
  /// plus its peer name for the three stakeholder roles) — the socket
  /// transport route map for a deployment is the union over all roles.
  static std::vector<std::string> LocalIds(ClinicRole role);

  /// doctor -> 0, patient -> 1, researcher -> 2, observer -> 3.
  static size_t NodeIndexFor(ClinicRole role);

 private:
  explicit ClinicDaemon(const ClinicDaemonOptions& options);

  Status Build(net::Scheduler* scheduler, net::Network* network);
  /// Fig. 1 slice + shared-table adoption (and, for the doctor, contract
  /// deploy + both on-chain registrations). Runs at Start.
  Status SetupRoleData();
  void ScheduleTick();
  void Tick();
  /// get_entry via the local node; !ok while not yet on-chain.
  Result<Json> Entry(const std::string& table_id);
  bool EntryAtVersion(const std::string& table_id, int64_t version,
                      bool require_no_pending_acks);
  bool CheckConverged();
  void Fail(Status status);

  ClinicDaemonOptions options_;
  std::unique_ptr<metrics::MetricsRegistry> metrics_;
  std::unique_ptr<runtime::NodeDaemon> node_daemon_;
  std::unique_ptr<Peer> peer_;  // null for the observer
  net::Scheduler* scheduler_ = nullptr;
  crypto::Address contract_;
  crypto::Address doctor_address_;  // get_entry caller for every role
  /// (on-chain table id, local view table) pairs this role shares.
  std::vector<std::pair<std::string, std::string>> shared_views_;

  enum class Phase { kWaitRegistration, kWaitUpstream, kWaitConverged };
  Phase phase_ = Phase::kWaitConverged;
  bool started_ = false;
  bool converged_ = false;
  Status failure_ = Status::OK();
  Micros started_at_ = 0;
  Micros acted_at_ = 0;      // when this role fired its update (0 = n/a)
  Micros converged_at_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace medsync::core

#endif  // MEDSYNC_CORE_DAEMON_H_
