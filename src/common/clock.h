#ifndef MEDSYNC_COMMON_CLOCK_H_
#define MEDSYNC_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace medsync {

/// Microseconds since the (simulated or real) epoch.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Formats a microsecond timestamp as "YYYY-MM-DD hh:mm:ss.mmm" (UTC),
/// matching the "Last Update Time" column of the paper's Fig. 3 metadata.
std::string FormatTimestamp(Micros micros);

/// Time source abstraction. Production-style code would use a wall clock;
/// the whole reproduction runs against SimClock so every experiment is
/// deterministic and block intervals/network latencies are simulated time,
/// not real time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros Now() const = 0;
};

/// A manually advanced clock owned by the discrete-event simulator.
class SimClock : public Clock {
 public:
  /// `epoch` is the starting time; defaults to 2019-01-01T00:00:00Z to give
  /// human-looking timestamps in traces.
  explicit SimClock(Micros epoch = kDefaultEpoch) : now_(epoch) {}

  Micros Now() const override { return now_; }

  /// Moves time forward by `delta` (must be >= 0).
  void Advance(Micros delta);

  /// Jumps to an absolute time (must not go backwards).
  void AdvanceTo(Micros when);

  static constexpr Micros kDefaultEpoch =
      1546300800LL * kMicrosPerSecond;  // 2019-01-01T00:00:00Z

 private:
  Micros now_;
};

/// The real wall clock (CLOCK_REALTIME), for the deployment plane only:
/// the socket transport's EventLoop stamps timers and blocks with it.
/// Deterministic tests and benches must keep using SimClock — medsync-lint
/// MS002 confines the underlying syscall to this translation unit.
class WallClock : public Clock {
 public:
  Micros Now() const override;
};

}  // namespace medsync

#endif  // MEDSYNC_COMMON_CLOCK_H_
