#ifndef MEDSYNC_COMMON_STATUS_H_
#define MEDSYNC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace medsync {

/// Canonical error codes used across the library. The set mirrors the codes
/// that the architecture actually produces: permission failures come from the
/// metadata contract, conflicts from the mempool ordering rule, corruption
/// from storage/chain integrity checks, and so on.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kFailedPrecondition = 5,
  kConflict = 6,
  kCorruption = 7,
  kUnavailable = 8,
  kTimeout = 9,
  kResourceExhausted = 10,
  kUnimplemented = 11,
  kInternal = 12,
};

/// Returns the canonical lower-case name of `code` (e.g. "permission denied").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, following the RocksDB/Arrow idiom:
/// library functions never throw; fallible operations return Status (or
/// Result<T>, see result.h) and callers are expected to check it.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// message only on error.
///
/// The type is [[nodiscard]]: silently dropping an error is a compile error
/// (-Werror=unused-result). A caller that genuinely does not care must say
/// so by name via IgnoreStatusForTest() — grep-able, unlike a (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `prefix + ": "` prepended to the
  /// message. No-op on OK statuses.
  Status WithPrefix(std::string_view prefix) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// The ONLY sanctioned way to drop a Status or Result<T> on the floor.
/// Tests use it for calls whose outcome is irrelevant to the assertion
/// (e.g. re-adding a duplicate to provoke a later state); library code is
/// expected to handle or propagate instead. Named rather than a bare
/// `(void)` cast so every deliberate discard is grep-able and reviewable
/// (medsync-lint forbids `(void)` status casts for the same reason).
template <typename StatusLike>
inline void IgnoreStatusForTest(const StatusLike&) {}

}  // namespace medsync

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define MEDSYNC_RETURN_IF_ERROR(expr)                    \
  do {                                                   \
    ::medsync::Status _medsync_status = (expr);          \
    if (!_medsync_status.ok()) return _medsync_status;   \
  } while (false)

#endif  // MEDSYNC_COMMON_STATUS_H_
