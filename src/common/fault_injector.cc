#include "common/fault_injector.h"

#include <atomic>

#include "common/strings.h"

namespace medsync {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

void FaultInjector::Install(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* FaultInjector::Get() {
  return g_injector.load(std::memory_order_acquire);
}

void FaultInjector::Kill(const std::string& point, uint64_t at_visit) {
  threading::MutexLock lock(mu_);
  Armed armed;
  armed.at_visit = visit_counts_[point] + at_visit;
  armed_[point] = armed;
}

void FaultInjector::TornWrite(const std::string& point, size_t keep_bytes,
                              uint64_t at_visit) {
  threading::MutexLock lock(mu_);
  Armed armed;
  armed.at_visit = visit_counts_[point] + at_visit;
  armed.torn = true;
  armed.keep_bytes = keep_bytes;
  armed_[point] = armed;
}

void FaultInjector::Disarm(const std::string& point) {
  threading::MutexLock lock(mu_);
  armed_.erase(point);
}

void FaultInjector::DisarmAll() {
  threading::MutexLock lock(mu_);
  armed_.clear();
}

std::vector<std::string> FaultInjector::visits() const {
  threading::MutexLock lock(mu_);
  return visit_log_;
}

uint64_t FaultInjector::visit_count(const std::string& point) const {
  threading::MutexLock lock(mu_);
  auto it = visit_counts_.find(point);
  return it == visit_counts_.end() ? 0 : it->second;
}

uint64_t FaultInjector::faults_fired() const {
  threading::MutexLock lock(mu_);
  return faults_fired_;
}

Status FaultInjector::OnPoint(const std::string& point) {
  threading::MutexLock lock(mu_);
  uint64_t count = ++visit_counts_[point];
  visit_log_.push_back(point);
  auto it = armed_.find(point);
  if (it == armed_.end() || it->second.torn || count != it->second.at_visit) {
    return Status::OK();
  }
  armed_.erase(it);
  ++faults_fired_;
  return Status::Unavailable(StrCat("fault injected at '", point, "'"));
}

bool FaultInjector::OnTornWrite(const std::string& point, size_t* keep_bytes) {
  threading::MutexLock lock(mu_);
  uint64_t count = ++visit_counts_[point];
  visit_log_.push_back(point);
  auto it = armed_.find(point);
  if (it == armed_.end() || !it->second.torn || count != it->second.at_visit) {
    return false;
  }
  *keep_bytes = it->second.keep_bytes;
  armed_.erase(it);
  ++faults_fired_;
  return true;
}

Status CheckFaultPoint(const char* point) {
  FaultInjector* injector = FaultInjector::Get();
  if (injector == nullptr) return Status::OK();
  return injector->OnPoint(point);
}

bool CheckTornWrite(const char* point, size_t* keep_bytes) {
  FaultInjector* injector = FaultInjector::Get();
  if (injector == nullptr) return false;
  return injector->OnTornWrite(point, keep_bytes);
}

}  // namespace medsync
