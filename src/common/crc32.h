#ifndef MEDSYNC_COMMON_CRC32_H_
#define MEDSYNC_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace medsync {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320) over `data`.
/// Shared integrity check for everything framed on disk or on the wire:
/// WAL records, sealed chunk files, and the socket transport's frame codec.
uint32_t Crc32(std::string_view data);

}  // namespace medsync

#endif  // MEDSYNC_COMMON_CRC32_H_
