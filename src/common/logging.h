#ifndef MEDSYNC_COMMON_LOGGING_H_
#define MEDSYNC_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace medsync {

class Status;

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

std::string_view LogLevelName(LogLevel level);

/// Process-wide logging configuration. Tests and the simulator set a sink to
/// capture protocol traces (the Fig. 5 step-by-step trace is emitted through
/// this); by default messages at >= kWarning go to stderr.
class Logging {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Replaces the output sink. Passing nullptr restores the stderr sink.
  static void set_sink(Sink sink);

  static void Emit(LogLevel level, std::string_view component,
                   std::string_view message);
};

/// Logs a non-OK `status` at kDebug and drops it — the library idiom for
/// best-effort operations (gossip sends, stale-flag upkeep, fire-and-forget
/// responses) whose failure is recovered by a retry/timeout/catch-up layer
/// rather than the caller. Named so every deliberate drop in src/ stays
/// grep-able; tests use IgnoreStatusForTest (status.h) instead. Bare
/// `(void)` status casts are forbidden by medsync-lint.
void LogIfError(const Status& status, std::string_view component,
                std::string_view context);

namespace internal_logging {

/// One log statement; streams into itself and emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { Logging::Emit(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

struct Voidify {
  void operator&&(const LogMessage&) const {}
};

}  // namespace internal_logging
}  // namespace medsync

/// Usage: MEDSYNC_LOG(kInfo, "chain") << "sealed block " << height;
/// The message is only formatted when the level passes the threshold.
#define MEDSYNC_LOG(level, component)                                \
  (::medsync::LogLevel::level < ::medsync::Logging::threshold())     \
      ? (void)0                                                      \
      : ::medsync::internal_logging::Voidify{} &&                    \
            ::medsync::internal_logging::LogMessage(                 \
                ::medsync::LogLevel::level, (component))

#endif  // MEDSYNC_COMMON_LOGGING_H_
