#include "common/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace medsync {

namespace {
const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}
}  // namespace

bool Json::AsBool() const {
  assert(is_bool());
  return bool_;
}

int64_t Json::AsInt() const {
  assert(is_int());
  return int_;
}

double Json::AsDouble() const {
  assert(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Json::AsString() const {
  assert(is_string());
  return string_;
}

const Json::Array& Json::AsArray() const {
  assert(is_array());
  return array_;
}

Json::Array& Json::AsArray() {
  assert(is_array());
  return array_;
}

const Json::Object& Json::AsObject() const {
  assert(is_object());
  return object_;
}

Json::Object& Json::AsObject() {
  assert(is_object());
  return object_;
}

bool Json::Has(std::string_view key) const {
  return is_object() && object_.find(std::string(key)) != object_.end();
}

const Json& Json::At(std::string_view key) const {
  if (!is_object()) return NullJson();
  auto it = object_.find(std::string(key));
  if (it == object_.end()) return NullJson();
  return it->second;
}

Json& Json::Set(std::string_view key, Json value) {
  if (is_null()) type_ = Type::kObject;
  assert(is_object());
  object_[std::string(key)] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  if (is_null()) type_ = Type::kArray;
  assert(is_array());
  array_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

Result<bool> Json::GetBool(std::string_view key) const {
  const Json& v = At(key);
  if (!v.is_bool()) {
    return Status::InvalidArgument(StrCat("missing bool field '", key, "'"));
  }
  return v.AsBool();
}

Result<int64_t> Json::GetInt(std::string_view key) const {
  const Json& v = At(key);
  if (!v.is_int()) {
    return Status::InvalidArgument(StrCat("missing int field '", key, "'"));
  }
  return v.AsInt();
}

Result<double> Json::GetDouble(std::string_view key) const {
  const Json& v = At(key);
  if (!v.is_number()) {
    return Status::InvalidArgument(StrCat("missing number field '", key, "'"));
  }
  return v.AsDouble();
}

Result<std::string> Json::GetString(std::string_view key) const {
  const Json& v = At(key);
  if (!v.is_string()) {
    return Status::InvalidArgument(StrCat("missing string field '", key, "'"));
  }
  return v.AsString();
}

namespace {

void EscapeStringTo(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

size_t EscapedStringSize(const std::string& s) {
  size_t size = 2;  // surrounding quotes
  for (char c : s) {
    switch (c) {
      case '"':
      case '\\':
      case '\n':
      case '\r':
      case '\t':
      case '\b':
      case '\f':
        size += 2;
        break;
      default:
        size += static_cast<unsigned char>(c) < 0x20 ? 6 : 1;  // \uXXXX
    }
  }
  return size;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      *out += buf;
      return;
    }
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no Inf/NaN
      }
      return;
    }
    case Type::kString:
      EscapeStringTo(out, string_);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        AppendIndent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendIndent(out, indent, depth + 1);
        EscapeStringTo(out, key);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

size_t Json::SerializedSize() const {
  // Mirrors compact DumpTo exactly; numbers still go through snprintf
  // because their printed width is value-dependent.
  switch (type_) {
    case Type::kNull:
      return 4;
    case Type::kBool:
      return bool_ ? 4 : 5;
    case Type::kInt: {
      char buf[32];
      return static_cast<size_t>(std::snprintf(
          buf, sizeof(buf), "%lld", static_cast<long long>(int_)));
    }
    case Type::kDouble: {
      if (!std::isfinite(double_)) return 4;  // "null"
      char buf[40];
      return static_cast<size_t>(
          std::snprintf(buf, sizeof(buf), "%.17g", double_));
    }
    case Type::kString:
      return EscapedStringSize(string_);
    case Type::kArray: {
      size_t size = 2;  // brackets
      if (!array_.empty()) size += array_.size() - 1;  // commas
      for (const Json& v : array_) size += v.SerializedSize();
      return size;
    }
    case Type::kObject: {
      size_t size = 2;  // braces
      if (!object_.empty()) size += object_.size() - 1;  // commas
      for (const auto& [key, value] : object_) {
        size += EscapedStringSize(key) + 1 + value.SerializedSize();  // colon
      }
      return size;
    }
  }
  return 0;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) {
    // Allow int/double numeric comparison.
    if (a.is_number() && b.is_number()) return a.AsDouble() == b.AsDouble();
    return false;
  }
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kInt:
      return a.int_ == b.int_;
    case Json::Type::kDouble:
      return a.double_ == b.double_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
 public:
  Parser(std::string_view text, Json::ParseLimits limits, bool wire)
      : text_(text), limits_(limits), wire_(wire) {}

  Result<Json> Parse() {
    SkipWhitespace();
    MEDSYNC_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    std::string message =
        StrCat("JSON parse error at offset ", pos_, ": ", what);
    // On the wire path the malformed bytes indict the stream, not the
    // caller's arguments.
    if (wire_) return Status::Corruption(std::move(message));
    return Status::InvalidArgument(std::move(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (depth_ > limits_.max_depth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        MEDSYNC_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject() {
    ++depth_;
    Consume('{');
    Json::Object obj;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Json(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key");
      }
      MEDSYNC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      MEDSYNC_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    --depth_;
    return Json(std::move(obj));
  }

  Result<Json> ParseArray() {
    ++depth_;
    Consume('[');
    Json::Array arr;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Json(std::move(arr));
    }
    while (true) {
      SkipWhitespace();
      MEDSYNC_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']'");
    }
    --depth_;
    return Json(std::move(arr));
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            MEDSYNC_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
            // UTF-16 surrogate pairs must be combined into one code point;
            // emitting them as two 3-byte sequences (CESU-8) produces
            // invalid UTF-8 that round-trips differently than the sender
            // wrote it. Unpaired surrogates are malformed input.
            if (code >= 0xdc00 && code <= 0xdfff) {
              return Error("unpaired low surrogate");
            }
            if (code >= 0xd800 && code <= 0xdbff) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate");
              }
              pos_ += 2;
              MEDSYNC_ASSIGN_OR_RETURN(unsigned low, ParseHex4());
              if (low < 0xdc00 || low > 0xdfff) {
                return Error("unpaired high surrogate");
              }
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else if (code < 0x10000) {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xf0 | (code >> 18)));
              out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Error("unknown escape character");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
    }
    return code;
  }

  bool ConsumeDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  Result<Json> ParseNumber() {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
    // The previous permissive scan ("any of 0-9.eE+-") accepted "+5",
    // ".5", "1.", and "01" — strtod would then quietly parse a value the
    // sender never wrote, which on the wire path is a misparse of hostile
    // bytes, not a convenience.
    size_t start = pos_;
    Consume('-');
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return Error("invalid number");  // leading zero
      }
    } else if (!ConsumeDigits()) {
      return Error("invalid number");
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!ConsumeDigits()) return Error("invalid number");
      is_double = true;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Error("invalid number");
      is_double = true;
    }
    std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Json(d);
  }

  std::string_view text_;
  Json::ParseLimits limits_;
  bool wire_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text, ParseLimits{}, /*wire=*/false).Parse();
}

Result<Json> Json::ParseWire(std::string_view text,
                             const ParseLimits& limits) {
  return Parser(text, limits, /*wire=*/true).Parse();
}

}  // namespace medsync
