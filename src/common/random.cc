#include "common/random.h"

#include <cassert>

namespace medsync {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::string Rng::NextAlnumString(size_t length) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::vector<uint8_t> Rng::NextBytes(size_t length) {
  std::vector<uint8_t> out(length);
  for (auto& b : out) b = static_cast<uint8_t>(NextUint64() & 0xff);
  return out;
}

size_t Rng::NextWeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    if (target < weights[i]) return i;
    target -= weights[i];
  }
  // Floating-point slack: fall back to the last positive-weight entry.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace medsync
