#include "common/clock.h"

#include <cassert>
#include <cstdio>
#include <ctime>

namespace medsync {

std::string FormatTimestamp(Micros micros) {
  time_t seconds = static_cast<time_t>(micros / kMicrosPerSecond);
  int millis = static_cast<int>((micros % kMicrosPerSecond) / 1000);
  if (millis < 0) {
    millis += 1000;
    seconds -= 1;
  }
  struct tm tm_utc;
  gmtime_r(&seconds, &tm_utc);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

void SimClock::Advance(Micros delta) {
  assert(delta >= 0);
  now_ += delta;
}

void SimClock::AdvanceTo(Micros when) {
  assert(when >= now_);
  if (when > now_) now_ = when;
}

Micros WallClock::Now() const {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<Micros>(ts.tv_sec) * kMicrosPerSecond +
         static_cast<Micros>(ts.tv_nsec) / 1000;
}

}  // namespace medsync
