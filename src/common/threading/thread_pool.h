#ifndef MEDSYNC_COMMON_THREADING_THREAD_POOL_H_
#define MEDSYNC_COMMON_THREADING_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/threading/mutex.h"

namespace medsync::threading {

/// A fixed-size worker pool with a single FIFO work queue.
///
/// Every parallel hot path in the library (PoW nonce search, Merkle
/// construction, block validation, sibling-view rederivation) takes an
/// optional `ThreadPool*`; a null pool selects the serial code path, which
/// stays byte-identical to the pre-threading behaviour. The parallel paths
/// are written to be DETERMINISTIC as well — same inputs, same outputs,
/// regardless of pool size or scheduling — so the discrete-event simulator
/// and the determinism tests hold with any pool plugged in.
///
/// Contract: tasks must not Submit-and-Wait on the SAME pool from inside a
/// pool worker (a saturated pool would deadlock). The library only
/// dispatches parallel work from simulator/benchmark threads, never from
/// inside a pool task.
class ThreadPool {
 public:
  /// Spawns `worker_count` threads (clamped to at least 1).
  explicit ThreadPool(size_t worker_count);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue — every task already submitted still runs — then
  /// joins all workers.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task) MEDSYNC_EXCLUDES(mu_);

  size_t worker_count() const { return workers_.size(); }

  /// Tasks executed since construction (observability for tests/benches).
  uint64_t tasks_executed() const MEDSYNC_EXCLUDES(mu_);

 private:
  void WorkerLoop() MEDSYNC_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ MEDSYNC_GUARDED_BY(mu_);
  bool stopping_ MEDSYNC_GUARDED_BY(mu_) = false;
  uint64_t tasks_executed_ MEDSYNC_GUARDED_BY(mu_) = 0;
  /// Written only by the constructor and joined by the destructor; sized
  /// reads (worker_count) need no lock.
  std::vector<std::thread> workers_;
};

/// A single-use countdown latch (std::latch without requiring <latch>
/// everywhere): Wait() blocks until CountDown() has been called `count`
/// times.
class Latch {
 public:
  explicit Latch(size_t count) : remaining_(count) {}

  void CountDown() MEDSYNC_EXCLUDES(mu_);
  void Wait() MEDSYNC_EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  size_t remaining_ MEDSYNC_GUARDED_BY(mu_);
};

/// Fork-join helper: Run() dispatches a task to the pool (or runs it inline
/// when the pool is null), Wait() blocks until every dispatched task
/// finished and rethrows the FIRST exception any task threw. The library
/// itself is Status-based and never throws, but user-supplied callables may;
/// swallowing their exceptions on a worker thread would abort the process.
class TaskGroup {
 public:
  /// `pool` may be null (inline execution) and must outlive the group.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for outstanding tasks; exceptions are dropped here (call Wait()
  /// explicitly to observe them).
  ~TaskGroup();

  void Run(std::function<void()> task) MEDSYNC_EXCLUDES(mu_);

  /// Blocks until all tasks Run() so far completed; rethrows the first
  /// captured exception.
  void Wait() MEDSYNC_EXCLUDES(mu_);

 private:
  void Finish(std::exception_ptr error) MEDSYNC_EXCLUDES(mu_);

  /// Set at construction, never reassigned.
  ThreadPool* pool_;
  Mutex mu_;
  CondVar cv_;
  size_t pending_ MEDSYNC_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ MEDSYNC_GUARDED_BY(mu_);
};

/// Splits [begin, end) into chunks of at least `grain` indices and invokes
/// `fn(chunk_begin, chunk_end)` for each, in parallel on `pool`. The caller
/// thread executes the first chunk itself (cuts dispatch latency for small
/// ranges). Serial fallbacks — null pool, single worker, or a range that
/// fits one grain — invoke `fn(begin, end)` once on the caller.
///
/// `fn` must be safe to run concurrently on disjoint chunks; chunk
/// boundaries depend only on (begin, end, grain) — never on worker count or
/// scheduling — so any per-chunk-slot reduction the caller performs is
/// identical across pool sizes. Exceptions thrown by `fn` propagate to the
/// caller.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace medsync::threading

#endif  // MEDSYNC_COMMON_THREADING_THREAD_POOL_H_
