#include "common/threading/thread_pool.h"

#include <algorithm>
#include <utility>

namespace medsync::threading {

ThreadPool::ThreadPool(size_t worker_count) {
  worker_count = std::max<size_t>(worker_count, 1);
  workers_.reserve(worker_count);
  for (size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

uint64_t ThreadPool::tasks_executed() const {
  MutexLock lock(mu_);
  return tasks_executed_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      // Drain-before-stop: queued work submitted before destruction still
      // runs; workers only exit on an empty queue.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_executed_;
    }
    task();
  }
}

void Latch::CountDown() {
  MutexLock lock(mu_);
  if (remaining_ > 0 && --remaining_ == 0) cv_.NotifyAll();
}

void Latch::Wait() {
  MutexLock lock(mu_);
  while (remaining_ != 0) cv_.Wait(mu_);
}

TaskGroup::~TaskGroup() {
  MutexLock lock(mu_);
  while (pending_ != 0) cv_.Wait(mu_);
}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {
    try {
      task();
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    MutexLock lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    Finish(error);
  });
}

void TaskGroup::Finish(std::exception_ptr error) {
  MutexLock lock(mu_);
  if (error && !first_error_) first_error_ = error;
  if (--pending_ == 0) cv_.NotifyAll();
}

void TaskGroup::Wait() {
  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    while (pending_ != 0) cv_.Wait(mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(grain, 1);
  const size_t range = end - begin;
  if (pool == nullptr || pool->worker_count() <= 1 || range <= grain) {
    fn(begin, end);
    return;
  }
  TaskGroup group(pool);
  // Dispatch every chunk after the first; the caller runs chunk 0 itself so
  // small ranges pay at most one cross-thread handoff of latency.
  for (size_t chunk_begin = begin + grain; chunk_begin < end;
       chunk_begin += grain) {
    size_t chunk_end = std::min(chunk_begin + grain, end);
    group.Run([&fn, chunk_begin, chunk_end] { fn(chunk_begin, chunk_end); });
  }
  try {
    fn(begin, begin + grain);
  } catch (...) {
    group.Wait();  // Never abandon in-flight chunks referencing `fn`.
    throw;
  }
  group.Wait();
}

}  // namespace medsync::threading
