#ifndef MEDSYNC_COMMON_THREADING_MUTEX_H_
#define MEDSYNC_COMMON_THREADING_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace medsync::threading {

/// An annotated std::mutex. The standard library's mutex carries no
/// thread-safety-analysis attributes (libstdc++ is unannotated), so clang
/// cannot see std::lock_guard acquisitions; wrapping it is what makes
/// MEDSYNC_GUARDED_BY checkable at compile time. Zero overhead: every
/// method is an inline forward.
class MEDSYNC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MEDSYNC_ACQUIRE() { mu_.lock(); }
  void Unlock() MEDSYNC_RELEASE() { mu_.unlock(); }
  bool TryLock() MEDSYNC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, so std::condition_variable_any (CondVar below)
  // and std::scoped_lock accept a threading::Mutex directly.
  void lock() MEDSYNC_ACQUIRE() { mu_.lock(); }
  void unlock() MEDSYNC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (the std::lock_guard shape, visible to the
/// analysis). Deliberately minimal: no deferred/adopted/movable variants —
/// code that needs to release early restructures into a narrower scope
/// instead.
class MEDSYNC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MEDSYNC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MEDSYNC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex (the absl::CondVar shape: Wait
/// takes the mutex, so the caller's lock discipline stays visible to the
/// analysis). Callers hold the mutex and loop on their predicate:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. The caller must hold `mu`. The release/reacquire happens
  /// inside the standard library where the analysis cannot follow, hence
  /// the no-analysis escape on the body; the REQUIRES contract is what
  /// call sites are checked against.
  void Wait(Mutex& mu) MEDSYNC_REQUIRES(mu) MEDSYNC_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace medsync::threading

#endif  // MEDSYNC_COMMON_THREADING_MUTEX_H_
