#include "common/crc32.h"

namespace medsync {

namespace {

uint32_t Crc32Table(size_t i) {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      table[n] = c;
    }
    return true;
  }();
  (void)initialized;
  return table[i];
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  uint32_t crc = 0xffffffffu;
  for (unsigned char c : data) {
    crc = Crc32Table((crc ^ c) & 0xff) ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace medsync
