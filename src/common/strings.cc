#include "common/strings.h"

#include <cctype>

namespace medsync {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const uint8_t* data, size_t size) {
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const std::vector<uint8_t>& data) {
  return HexEncode(data.data(), data.size());
}

bool HexDecode(std::string_view hex, std::vector<uint8_t>* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

}  // namespace medsync
