#include "common/logging.h"

#include <cstdio>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading/mutex.h"

namespace medsync {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {

threading::Mutex g_mutex;
LogLevel g_threshold MEDSYNC_GUARDED_BY(g_mutex) = LogLevel::kWarning;
Logging::Sink g_sink MEDSYNC_GUARDED_BY(g_mutex);  // empty => stderr

void DefaultSink(LogLevel level, std::string_view component,
                 std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(LogLevelName(level).size()),
               LogLevelName(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace

LogLevel Logging::threshold() {
  threading::MutexLock lock(g_mutex);
  return g_threshold;
}

void Logging::set_threshold(LogLevel level) {
  threading::MutexLock lock(g_mutex);
  g_threshold = level;
}

void Logging::set_sink(Sink sink) {
  threading::MutexLock lock(g_mutex);
  g_sink = std::move(sink);
}

void Logging::Emit(LogLevel level, std::string_view component,
                   std::string_view message) {
  Sink sink;
  {
    threading::MutexLock lock(g_mutex);
    if (level < g_threshold) return;
    sink = g_sink;
  }
  if (sink) {
    sink(level, component, message);
  } else {
    DefaultSink(level, component, message);
  }
}

void LogIfError(const Status& status, std::string_view component,
                std::string_view context) {
  if (status.ok()) return;
  MEDSYNC_LOG(kDebug, component) << context << ": " << status.ToString();
}

}  // namespace medsync
