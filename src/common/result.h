#ifndef MEDSYNC_COMMON_RESULT_H_
#define MEDSYNC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace medsync {

/// A value-or-error container (the StatusOr / arrow::Result idiom).
///
/// A `Result<T>` holds either a `T` or a non-OK `Status`. It is the return
/// type of every fallible library function that produces a value:
///
///   Result<Table> view = lens.Get(source);
///   if (!view.ok()) return view.status();
///   Use(*view);
///
/// Accessing the value of an error Result is a programming error and asserts
/// in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit by design so `return value;` works).
  Result(T value) : value_(std::move(value)) {}

  /// Constructs from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status, or OK if a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace medsync

/// Assigns the value of `rexpr` (a Result<T> expression) to `lhs`, or returns
/// the error status from the enclosing function.
///
///   MEDSYNC_ASSIGN_OR_RETURN(Table view, lens.Get(source));
#define MEDSYNC_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  MEDSYNC_ASSIGN_OR_RETURN_IMPL_(                                      \
      MEDSYNC_RESULT_CONCAT_(_medsync_result, __LINE__), lhs, rexpr)

#define MEDSYNC_RESULT_CONCAT_INNER_(a, b) a##b
#define MEDSYNC_RESULT_CONCAT_(a, b) MEDSYNC_RESULT_CONCAT_INNER_(a, b)

#define MEDSYNC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // MEDSYNC_COMMON_RESULT_H_
