#ifndef MEDSYNC_COMMON_STRINGS_H_
#define MEDSYNC_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace medsync {

/// Concatenates the string representations of all arguments, using
/// operator<< for formatting. Convenience for building error messages.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  ((oss << args), ...);
  return oss.str();
}

/// Splits `input` on `sep`. Empty pieces are kept, so
/// Split("a,,b", ',') == {"a", "", "b"} and Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view input, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view input);

/// Encodes `data` as lowercase hex.
std::string HexEncode(const uint8_t* data, size_t size);
std::string HexEncode(const std::vector<uint8_t>& data);

/// Decodes lowercase/uppercase hex into bytes. Returns false on malformed
/// input (odd length or non-hex character), leaving `out` unspecified.
bool HexDecode(std::string_view hex, std::vector<uint8_t>* out);

}  // namespace medsync

#endif  // MEDSYNC_COMMON_STRINGS_H_
