#include "common/metrics/protocol_tracer.h"

#include "common/strings.h"

namespace medsync::metrics {

Json StepEvent::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("figure", figure);
  out.Set("step", step);
  out.Set("action", action);
  out.Set("peer", peer);
  out.Set("table", table);
  out.Set("outcome", outcome);
  out.Set("at", at);
  out.Set("sim_duration", sim_duration);
  return out;
}

ProtocolTracer::ProtocolTracer(MetricsRegistry* registry, size_t max_events)
    : registry_(registry), max_events_(max_events) {}

void ProtocolTracer::Record(StepEvent event) {
  if (registry_ != nullptr) {
    const std::string stem =
        StrCat("protocol.fig", event.figure, ".step", event.step);
    registry_->GetCounter(stem)->Increment();
    registry_->GetHistogram(StrCat(stem, ".sim_us"))
        ->Record(static_cast<uint64_t>(
            event.sim_duration < 0 ? 0 : event.sim_duration));
  }
  threading::MutexLock lock(mu_);
  if (sink_) sink_(event);
  if (events_.size() >= max_events_) {
    ++dropped_;
    if (registry_ != nullptr) {
      registry_->GetCounter("protocol.trace_dropped")->Increment();
    }
    return;
  }
  events_.push_back(std::move(event));
}

void ProtocolTracer::SetSink(std::function<void(const StepEvent&)> sink) {
  threading::MutexLock lock(mu_);
  sink_ = std::move(sink);
}

std::vector<StepEvent> ProtocolTracer::Events() const {
  threading::MutexLock lock(mu_);
  return events_;
}

size_t ProtocolTracer::event_count() const {
  threading::MutexLock lock(mu_);
  return events_.size();
}

uint64_t ProtocolTracer::dropped() const {
  threading::MutexLock lock(mu_);
  return dropped_;
}

void ProtocolTracer::Clear() {
  threading::MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

Json ProtocolTracer::ToJson() const {
  threading::MutexLock lock(mu_);
  Json events = Json::MakeArray();
  for (const StepEvent& event : events_) events.Append(event.ToJson());
  Json out = Json::MakeObject();
  out.Set("dropped", dropped_);
  out.Set("events", std::move(events));
  return out;
}

}  // namespace medsync::metrics
