#include "common/metrics/metrics.h"

#include <algorithm>
#include <cmath>

namespace medsync::metrics {

Histogram::Histogram(Options options)
    : options_(options), buckets_(options.bucket_count + 1) {
  if (options_.first_bound == 0) options_.first_bound = 1;
  if (options_.bucket_count == 0) {
    options_.bucket_count = 1;
    buckets_ = std::vector<std::atomic<uint64_t>>(2);
  }
}

void Histogram::Record(uint64_t value) {
  size_t index = options_.bucket_count;  // overflow unless a bound fits
  for (size_t i = 0; i < options_.bucket_count; ++i) {
    if (value <= BucketBound(i)) {
      index = i;
      break;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

uint64_t Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < options_.bucket_count; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target && cumulative > 0) {
      // The quantile cannot exceed the recorded maximum.
      return std::min(BucketBound(i), max());
    }
  }
  return max();
}

Json Histogram::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("count", count());
  out.Set("sum", sum());
  out.Set("min", min());
  out.Set("max", max());
  out.Set("p50", Quantile(0.50));
  out.Set("p90", Quantile(0.90));
  out.Set("p99", Quantile(0.99));
  Json buckets = Json::MakeArray();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    Json pair = Json::MakeArray();
    pair.Append(i < options_.bucket_count
                    ? static_cast<int64_t>(BucketBound(i))
                    : static_cast<int64_t>(-1));  // overflow bucket
    pair.Append(n);
    buckets.Append(std::move(pair));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  threading::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  threading::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         Histogram::Options options) {
  threading::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return it->second.get();
}

Json MetricsRegistry::Snapshot() const {
  threading::MutexLock lock(mu_);
  Json counters = Json::MakeObject();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, counter->value());
  }
  Json gauges = Json::MakeObject();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, gauge->value());
  }
  Json histograms = Json::MakeObject();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  Json out = Json::MakeObject();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

size_t MetricsRegistry::metric_count() const {
  threading::MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace medsync::metrics
