#ifndef MEDSYNC_COMMON_METRICS_PROTOCOL_TRACER_H_
#define MEDSYNC_COMMON_METRICS_PROTOCOL_TRACER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/clock.h"
#include "common/metrics/metrics.h"
#include "common/thread_annotations.h"
#include "common/threading/mutex.h"

namespace medsync::metrics {

/// One completed protocol step of the paper's Fig. 4 (7-step CRUD) or
/// Fig. 5 (11-step cross-peer update). All timing is SIMULATED time, so a
/// trace is byte-identical across runs and thread-pool sizes.
struct StepEvent {
  /// 4 = CRUD protocol, 5 = bidirectional update workflow.
  int figure = 5;
  /// Step number within the figure (Fig. 5: 1..11; see docs/PROTOCOL.md
  /// for the exact mapping used by Peer).
  int step = 0;
  /// Short verb for the step ("stage", "request_update", "apply_fetch"...).
  std::string action;
  std::string peer;
  std::string table;
  /// "ok", "denied", "failed", ...
  std::string outcome;
  /// Simulated time the step completed.
  Micros at = 0;
  /// Simulated duration the step spans (0 for instantaneous local steps;
  /// proposal->decision and notification->apply spans for the chain-bound
  /// ones).
  Micros sim_duration = 0;

  Json ToJson() const;
};

/// Records structured protocol-step events, replacing eyeball-only string
/// traces with something a harness can assert on. Optionally tied to a
/// MetricsRegistry, where every recorded step also bumps
/// `protocol.fig<F>.step<S>` and feeds the per-step sim-time histogram
/// `protocol.fig<F>.step<S>.sim_us`.
class ProtocolTracer {
 public:
  /// `registry` may be nullptr (events only). `max_events` bounds memory
  /// on long benchmark runs; events beyond it are counted, not stored.
  explicit ProtocolTracer(MetricsRegistry* registry = nullptr,
                          size_t max_events = 65536);

  ProtocolTracer(const ProtocolTracer&) = delete;
  ProtocolTracer& operator=(const ProtocolTracer&) = delete;

  void Record(StepEvent event) MEDSYNC_EXCLUDES(mu_);

  /// Optional live sink, called (under the tracer lock) for every event.
  void SetSink(std::function<void(const StepEvent&)> sink)
      MEDSYNC_EXCLUDES(mu_);

  std::vector<StepEvent> Events() const MEDSYNC_EXCLUDES(mu_);
  size_t event_count() const MEDSYNC_EXCLUDES(mu_);
  uint64_t dropped() const MEDSYNC_EXCLUDES(mu_);
  void Clear() MEDSYNC_EXCLUDES(mu_);

  /// {"dropped":N,"events":[...]}.
  Json ToJson() const MEDSYNC_EXCLUDES(mu_);

 private:
  mutable threading::Mutex mu_;
  /// Both set at construction, never reassigned (registry metrics are
  /// internally synchronized).
  MetricsRegistry* registry_;
  size_t max_events_;
  std::vector<StepEvent> events_ MEDSYNC_GUARDED_BY(mu_);
  uint64_t dropped_ MEDSYNC_GUARDED_BY(mu_) = 0;
  std::function<void(const StepEvent&)> sink_ MEDSYNC_GUARDED_BY(mu_);
};

}  // namespace medsync::metrics

#endif  // MEDSYNC_COMMON_METRICS_PROTOCOL_TRACER_H_
