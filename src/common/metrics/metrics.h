#ifndef MEDSYNC_COMMON_METRICS_METRICS_H_
#define MEDSYNC_COMMON_METRICS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "common/threading/mutex.h"

namespace medsync::metrics {

/// A monotonically increasing counter (events, bytes, rejects-by-reason).
/// Thread-safe; increments are relaxed atomics, so counters are cheap
/// enough for hot paths like per-message network accounting.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A signed instantaneous value (mempool occupancy, queue depth). Supports
/// both absolute Set and relative Add so shared gauges can aggregate the
/// contributions of several components.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over fixed exponential (power-of-two) buckets: bucket i
/// covers values in (bound(i-1), bound(i)] with bound(i) = first_bound<<i,
/// plus one overflow bucket. Fixed buckets keep Record() lock-free and make
/// two histograms fed the same values byte-identical in snapshots — the
/// property the determinism sweep checks across thread-pool sizes.
class Histogram {
 public:
  struct Options {
    /// Upper bound of the first bucket. Values are whatever unit the call
    /// site records (this codebase records simulated microseconds, nonce
    /// counts, and table sizes).
    uint64_t first_bound = 1;
    /// Number of finite buckets; the default covers 1 .. 2^27 (~134 s in
    /// microseconds) before overflow.
    size_t bucket_count = 28;
  };

  Histogram() : Histogram(Options()) {}
  explicit Histogram(Options options);

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Upper bucket bound containing the q-quantile (q in (0, 1]); the exact
  /// recorded maximum when the quantile lands in the overflow bucket.
  /// 0 when empty.
  uint64_t Quantile(double q) const;

  /// Inclusive upper bound of finite bucket `i`.
  uint64_t BucketBound(size_t i) const { return options_.first_bound << i; }
  size_t bucket_count() const { return options_.bucket_count; }

  /// {"count":..,"max":..,"min":..,"p50":..,"p90":..,"p99":..,"sum":..,
  ///  "buckets":[[bound,count],...]} — only non-empty buckets are listed;
  /// the overflow bucket appears with bound -1.
  Json ToJson() const;

 private:
  Options options_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bucket_count + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// A named collection of metrics with canonical JSON snapshot export.
/// Registration (Get*) takes a mutex; the returned pointers are stable for
/// the registry's lifetime, so call sites register once and cache the
/// pointer for lock-free updates on the hot path. Because snapshots
/// serialize through Json (sorted keys), two registries holding equal
/// metric sets and values produce byte-identical Snapshot().Dump() text.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; never returns nullptr.
  Counter* GetCounter(std::string_view name) MEDSYNC_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) MEDSYNC_EXCLUDES(mu_);
  /// `options` only applies when the histogram is first created.
  Histogram* GetHistogram(std::string_view name,
                          Histogram::Options options = Histogram::Options())
      MEDSYNC_EXCLUDES(mu_);

  /// {"counters":{name:value,...},"gauges":{...},"histograms":{name:{...}}}
  Json Snapshot() const MEDSYNC_EXCLUDES(mu_);

  size_t metric_count() const MEDSYNC_EXCLUDES(mu_);

 private:
  mutable threading::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MEDSYNC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MEDSYNC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      MEDSYNC_GUARDED_BY(mu_);
};

/// Null-tolerant update helpers: components cache metric pointers that stay
/// nullptr when no registry is attached, so instrumentation is free in the
/// un-wired case.
inline void Inc(Counter* counter, uint64_t delta = 1) {
  if (counter != nullptr) counter->Increment(delta);
}
inline void GaugeAdd(Gauge* gauge, int64_t delta) {
  if (gauge != nullptr) gauge->Add(delta);
}
inline void GaugeSet(Gauge* gauge, int64_t value) {
  if (gauge != nullptr) gauge->Set(value);
}
inline void Observe(Histogram* histogram, uint64_t value) {
  if (histogram != nullptr) histogram->Record(value);
}

}  // namespace medsync::metrics

#endif  // MEDSYNC_COMMON_METRICS_METRICS_H_
