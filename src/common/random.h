#ifndef MEDSYNC_COMMON_RANDOM_H_
#define MEDSYNC_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace medsync {

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// splitmix64). Every simulation component takes an explicit Rng (or a seed)
/// so whole-system runs are reproducible from a single seed — the property
/// the benchmark harness relies on.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Bernoulli with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Random lowercase alphanumeric string of length `length`.
  std::string NextAlnumString(size_t length);

  /// Random bytes.
  std::vector<uint8_t> NextBytes(size_t length);

  /// Picks a uniformly random element index of a container of size `size`.
  size_t NextIndex(size_t size) { return NextBelow(size); }

  /// Derives an independent child generator; useful to give each simulated
  /// component its own stream without correlation.
  Rng Fork();

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// its weight. Zero-weight entries are never picked; at least one weight
  /// must be positive.
  size_t NextWeightedIndex(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle driven by this generator (std::shuffle
  /// is implementation-defined across standard libraries, so seeded
  /// schedules would not be portable bytes).
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[NextBelow(i + 1)]);
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& PickOne(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  /// Picks `count` distinct elements (order randomized); if count >= size,
  /// returns a shuffled copy of everything.
  template <typename T>
  std::vector<T> PickDistinct(const std::vector<T>& items, size_t count) {
    std::vector<T> pool = items;
    Shuffle(&pool);
    if (count < pool.size()) pool.resize(count);
    return pool;
  }

 private:
  uint64_t state_[4];
};

}  // namespace medsync

#endif  // MEDSYNC_COMMON_RANDOM_H_
