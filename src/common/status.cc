#include "common/status.h"

namespace medsync {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kPermissionDenied:
      return "permission denied";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kConflict:
      return "conflict";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithPrefix(std::string_view prefix) const {
  if (ok()) return *this;
  std::string msg(prefix);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace medsync
