#ifndef MEDSYNC_COMMON_JSON_H_
#define MEDSYNC_COMMON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace medsync {

/// A small self-contained JSON value type, parser, and writer.
///
/// JSON is the project's interchange format: smart-contract call payloads and
/// events, serialized lens specifications exchanged between sharing peers,
/// and network message bodies are all Json values. Object keys are kept in
/// sorted order (std::map) so serialization is canonical — two structurally
/// equal values always produce byte-identical text, which matters because
/// transaction payloads are hashed and signed.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Null by default.
  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(int64_t value) : type_(Type::kInt), int_(value) {}
  Json(uint64_t value) : type_(Type::kInt), int_(static_cast<int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(std::string_view value) : type_(Type::kString), string_(value) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error checked
  /// by assert. Use the Get* helpers below for fallible access.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;  // accepts int values too
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object field access. `Has` returns false for non-objects.
  bool Has(std::string_view key) const;

  /// Returns the field or a shared null value for missing keys/non-objects.
  const Json& At(std::string_view key) const;

  /// Inserts or overwrites a field; converts this value to an object if null.
  Json& Set(std::string_view key, Json value);

  /// Appends to an array; converts this value to an array if null.
  Json& Append(Json value);

  size_t size() const;

  /// Fallible typed field lookup used pervasively when decoding payloads.
  Result<bool> GetBool(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;

  /// Serializes to compact canonical JSON.
  std::string Dump() const;

  /// Length of Dump() without building the string — for byte accounting
  /// (e.g. network payload sizes) where serializing just to measure would
  /// double the work.
  size_t SerializedSize() const;

  /// Serializes with two-space indentation (for traces and examples).
  std::string DumpPretty() const;

  /// Parser limits. The default depth matches trusted inputs (our own
  /// checkpoints, CLI files); the wire path tightens it — a hostile peer
  /// must not be able to wind the recursive-descent parser 256 frames deep.
  struct ParseLimits {
    int max_depth = 256;
  };

  /// Parses `text`; returns InvalidArgument with position info on error.
  /// Strict JSON: rejects unpaired UTF-16 surrogates, truncated `\uXXXX`
  /// escapes, unterminated strings, and non-grammar numbers ("+5", ".5",
  /// "1.", "01").
  static Result<Json> Parse(std::string_view text);

  /// Parse() for bytes that crossed a trust boundary (the socket
  /// transport's frame payloads): a tighter nesting-depth default and
  /// every malformation reported as Corruption — the stream, not the
  /// caller, is at fault.
  static Result<Json> ParseWire(std::string_view text,
                                const ParseLimits& limits = {.max_depth = 64});

  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace medsync

#endif  // MEDSYNC_COMMON_JSON_H_
