#ifndef MEDSYNC_COMMON_THREAD_ANNOTATIONS_H_
#define MEDSYNC_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (the abseil/LLVM macro set,
/// trimmed to what this codebase uses). Under clang with
/// -Wthread-safety (the -DMEDSYNC_THREAD_SAFETY_ANALYSIS=ON build, see the
/// top-level CMakeLists.txt) the compiler statically proves that every
/// access to a MEDSYNC_GUARDED_BY(mu) member happens with `mu` held and
/// that every MEDSYNC_REQUIRES(mu) function is only called under `mu` —
/// lock-discipline bugs become build failures. Other compilers (the gcc
/// the container ships) see empty macros and compile the same code
/// unchanged.
///
/// Conventions in this codebase:
///  * Every mutex-protected member is MEDSYNC_GUARDED_BY(mu_). Members a
///    lock does NOT guard (immutable after construction, or atomics) carry
///    a comment saying so — absence of an annotation is a claim, not an
///    oversight.
///  * Private helpers that expect the caller to hold the lock are
///    MEDSYNC_REQUIRES(mu_); public entry points that take the lock
///    themselves are MEDSYNC_EXCLUDES(mu_) when they would self-deadlock
///    if called with it held.
///  * The annotations refer to members by name, so the mutex is declared
///    BEFORE the data it guards.

#if defined(__clang__) && defined(__has_attribute)
#define MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Documents that the annotated mutex/lock object is itself a capability.
#define MEDSYNC_CAPABILITY(x) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// A member that must only be read or written with the given mutex held.
#define MEDSYNC_GUARDED_BY(x) MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// A pointer member whose POINTEE is guarded by the given mutex.
#define MEDSYNC_PT_GUARDED_BY(x) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// A function that must be called with the given mutex(es) held.
#define MEDSYNC_REQUIRES(...) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// A function that must NOT be called with the given mutex(es) held
/// (it acquires them itself; calling it under the lock self-deadlocks).
#define MEDSYNC_EXCLUDES(...) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// A function that acquires the mutex and returns holding it.
#define MEDSYNC_ACQUIRE(...) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// A function that releases a mutex acquired earlier.
#define MEDSYNC_RELEASE(...) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// A function that acquires the mutex iff it returns true.
#define MEDSYNC_TRY_ACQUIRE(...) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// An RAII type whose constructor acquires a capability and whose
/// destructor releases it (threading::MutexLock).
#define MEDSYNC_SCOPED_CAPABILITY \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// A function whose return value is a reference to a guarded member
/// (callers need the lock to USE it, not to obtain it).
#define MEDSYNC_RETURN_CAPABILITY(x) \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function body. Used only
/// where the analysis cannot follow the locking (e.g. std::unique_lock
/// handed across a condition-variable wait) — every use carries a comment
/// saying why.
#define MEDSYNC_NO_THREAD_SAFETY_ANALYSIS \
  MEDSYNC_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // MEDSYNC_COMMON_THREAD_ANNOTATIONS_H_
