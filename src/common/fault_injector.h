#ifndef MEDSYNC_COMMON_FAULT_INJECTOR_H_
#define MEDSYNC_COMMON_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading/mutex.h"

namespace medsync {

/// A process-wide crash/fault-injection harness for the durability layer.
///
/// Storage code marks its crash windows with named points
/// (`CheckFaultPoint("wal.append.after_write")`); a test installs an
/// injector, arms a point, and the instrumented operation fails exactly
/// there with Status::Unavailable — modelling a process killed mid-step.
/// Because the simulated "kernel" (the file system) has already done
/// everything before the point, re-opening the same directory afterwards
/// exercises the real recovery path.
///
/// Two fault shapes:
///  * Kill(point): the Nth visit of `point` returns an error before the
///    step it guards executes.
///  * TornWrite(point, keep_bytes): the write guarded by `point` persists
///    only the first `keep_bytes` bytes, then fails — a torn/partial write.
///
/// Every visit is recorded (armed or not) so tests can assert ordering
/// invariants, e.g. that the snapshot file is fsync'd BEFORE the rename.
///
/// Thread-safe (a mutex guards all state); with no injector installed the
/// instrumentation is a single relaxed pointer load.
class FaultInjector {
 public:
  /// Installs `injector` as the process-wide instance (nullptr uninstalls).
  /// The injector must outlive its installation. Tests typically hold one
  /// on the stack and uninstall in their teardown.
  static void Install(FaultInjector* injector);
  static FaultInjector* Get();

  /// Arms `point` to fail on its `at_visit`th visit from now (1 = next).
  void Kill(const std::string& point, uint64_t at_visit = 1)
      MEDSYNC_EXCLUDES(mu_);

  /// Arms the torn-write point `point`: the guarded write keeps only the
  /// first `keep_bytes` bytes and then fails, on its `at_visit`th visit.
  void TornWrite(const std::string& point, size_t keep_bytes,
                 uint64_t at_visit = 1) MEDSYNC_EXCLUDES(mu_);

  /// Disarms one point / everything (visit history is kept).
  void Disarm(const std::string& point) MEDSYNC_EXCLUDES(mu_);
  void DisarmAll() MEDSYNC_EXCLUDES(mu_);

  /// Visit log, in order, of every instrumented point reached while this
  /// injector was installed.
  std::vector<std::string> visits() const MEDSYNC_EXCLUDES(mu_);
  /// Number of times `point` was reached.
  uint64_t visit_count(const std::string& point) const MEDSYNC_EXCLUDES(mu_);
  /// Number of faults actually fired.
  uint64_t faults_fired() const MEDSYNC_EXCLUDES(mu_);

  // -- Instrumentation side (called by storage code) -----------------------

  /// Records the visit; returns Unavailable iff the point is armed and this
  /// is the armed visit.
  Status OnPoint(const std::string& point) MEDSYNC_EXCLUDES(mu_);

  /// Records the visit; returns true iff a torn write should be simulated,
  /// in which case `*keep_bytes` receives how many bytes to persist.
  bool OnTornWrite(const std::string& point, size_t* keep_bytes)
      MEDSYNC_EXCLUDES(mu_);

 private:
  struct Armed {
    uint64_t at_visit = 0;   // fires when the visit counter reaches this
    bool torn = false;
    size_t keep_bytes = 0;
  };

  mutable threading::Mutex mu_;
  std::map<std::string, Armed> armed_ MEDSYNC_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> visit_counts_ MEDSYNC_GUARDED_BY(mu_);
  std::vector<std::string> visit_log_ MEDSYNC_GUARDED_BY(mu_);
  uint64_t faults_fired_ MEDSYNC_GUARDED_BY(mu_) = 0;
};

/// Convenience for instrumentation sites: no-op OK when no injector is
/// installed.
Status CheckFaultPoint(const char* point);

/// Torn-write variant: returns false (no truncation) when no injector is
/// installed or the point is not armed.
bool CheckTornWrite(const char* point, size_t* keep_bytes);

}  // namespace medsync

#endif  // MEDSYNC_COMMON_FAULT_INJECTOR_H_
