#ifndef MEDSYNC_CHAIN_SEALER_H_
#define MEDSYNC_CHAIN_SEALER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "chain/block.h"
#include "common/metrics/metrics.h"
#include "crypto/keys.h"

namespace medsync::threading {
class ThreadPool;
}  // namespace medsync::threading

namespace medsync::chain {

/// Seals candidate blocks and validates seals on received blocks. Two
/// implementations:
///  * PowSealer — Bitcoin/Ethereum-1.x-style proof of work with a
///    configurable leading-zero-bit difficulty;
///  * PoaSealer — proof of authority: a fixed validator set signs blocks in
///    round-robin, modelling the private/permissioned deployment the paper
///    recommends (Section IV-3).
class Sealer {
 public:
  virtual ~Sealer() = default;

  /// Completes `block`'s header (nonce search or authority signature).
  /// `block.header.merkle_root` must already be set.
  virtual Status Seal(Block* block) const = 0;

  /// Checks the seal of a received header.
  virtual Status ValidateSeal(const BlockHeader& header) const = 0;
};

class PowSealer : public Sealer {
 public:
  /// `difficulty_bits`: required leading zero bits of the header hash.
  /// Simulation-scale values are 8-20 bits (ms-scale sealing on one core).
  ///
  /// `pool` (optional, must outlive the sealer) parallelizes the nonce
  /// search across workers on disjoint ranges. The parallel search is
  /// deterministic: it always returns the LOWEST satisfying nonce, i.e. the
  /// exact nonce the serial scan finds, so sealed blocks are byte-identical
  /// whether or not a pool is plugged in.
  ///
  /// `max_nonce` bounds the search space (inclusive). Seal returns
  /// ResourceExhausted once the space is exhausted without a hit — at
  /// realistic difficulties that means a wrapped 64-bit scan; tests lower
  /// the bound to make exhaustion reachable.
  explicit PowSealer(
      uint32_t difficulty_bits, threading::ThreadPool* pool = nullptr,
      uint64_t max_nonce = std::numeric_limits<uint64_t>::max())
      : difficulty_bits_(difficulty_bits), pool_(pool), max_nonce_(max_nonce) {}

  Status Seal(Block* block) const override;
  Status ValidateSeal(const BlockHeader& header) const override;

  uint32_t difficulty_bits() const { return difficulty_bits_; }
  uint64_t max_nonce() const { return max_nonce_; }

  /// Attaches chain.pow.* counters. nonces_scanned is counted as
  /// final_nonce + 1 (the serial scan's work), NOT the number of hashes the
  /// parallel search actually computed — that keeps the counter identical
  /// across pool sizes. The registry must outlive the sealer; nullptr
  /// detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

 private:
  Status SealSerial(BlockHeader* header) const;
  Status SealParallel(BlockHeader* header) const;

  uint32_t difficulty_bits_;
  threading::ThreadPool* pool_;
  uint64_t max_nonce_;

  metrics::Counter* seal_attempts_ = nullptr;
  metrics::Counter* sealed_ = nullptr;
  metrics::Counter* exhausted_ = nullptr;
  metrics::Counter* nonces_scanned_ = nullptr;
};

class PoaSealer : public Sealer {
 public:
  /// `authorities`: the ordered validator set (addresses). `signer` is this
  /// node's key when it seals; pass nullptr on validate-only nodes.
  ///
  /// `slot_interval` selects the rotation scheme. Zero (default) rotates by
  /// block HEIGHT — round robin per chain, the classic single-chain mode.
  /// Nonzero rotates by TIME SLOT: the authority at header timestamp T is
  /// authorities[(T / slot_interval) % n], independent of height and lane.
  /// Sharded deployments need slot mode: with height rotation each lane's
  /// turn order advances at its own pace, so which node seals a given wall
  /// instant would depend on the lane count; with slot rotation one node
  /// owns ALL lanes for a slot, keeping block timing (and therefore soak
  /// fingerprints) invariant across lane counts.
  PoaSealer(std::vector<crypto::Address> authorities,
            std::shared_ptr<const crypto::KeyPair> signer,
            Micros slot_interval = 0);

  Status Seal(Block* block) const override;
  Status ValidateSeal(const BlockHeader& header) const override;

  /// The authority whose turn it is for `header` (height round robin or
  /// timestamp slot, per the constructor's `slot_interval`).
  const crypto::Address& AuthorityFor(const BlockHeader& header) const;

  /// The authority whose turn it is at `height` (height rotation only —
  /// kept for callers predicting turns on classic single-chain setups).
  const crypto::Address& AuthorityForHeight(uint64_t height) const;
  const std::vector<crypto::Address>& authorities() const {
    return authorities_;
  }
  Micros slot_interval() const { return slot_interval_; }

 private:
  std::vector<crypto::Address> authorities_;
  std::shared_ptr<const crypto::KeyPair> signer_;
  Micros slot_interval_;
};

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_SEALER_H_
