#ifndef MEDSYNC_CHAIN_SEALER_H_
#define MEDSYNC_CHAIN_SEALER_H_

#include <memory>
#include <set>
#include <vector>

#include "chain/block.h"
#include "crypto/keys.h"

namespace medsync::chain {

/// Seals candidate blocks and validates seals on received blocks. Two
/// implementations:
///  * PowSealer — Bitcoin/Ethereum-1.x-style proof of work with a
///    configurable leading-zero-bit difficulty;
///  * PoaSealer — proof of authority: a fixed validator set signs blocks in
///    round-robin, modelling the private/permissioned deployment the paper
///    recommends (Section IV-3).
class Sealer {
 public:
  virtual ~Sealer() = default;

  /// Completes `block`'s header (nonce search or authority signature).
  /// `block.header.merkle_root` must already be set.
  virtual Status Seal(Block* block) const = 0;

  /// Checks the seal of a received header.
  virtual Status ValidateSeal(const BlockHeader& header) const = 0;
};

class PowSealer : public Sealer {
 public:
  /// `difficulty_bits`: required leading zero bits of the header hash.
  /// Simulation-scale values are 8-20 bits (ms-scale sealing on one core).
  explicit PowSealer(uint32_t difficulty_bits)
      : difficulty_bits_(difficulty_bits) {}

  Status Seal(Block* block) const override;
  Status ValidateSeal(const BlockHeader& header) const override;

  uint32_t difficulty_bits() const { return difficulty_bits_; }

 private:
  uint32_t difficulty_bits_;
};

class PoaSealer : public Sealer {
 public:
  /// `authorities`: the ordered validator set (addresses). `signer` is this
  /// node's key when it seals; pass nullptr on validate-only nodes.
  PoaSealer(std::vector<crypto::Address> authorities,
            std::shared_ptr<const crypto::KeyPair> signer);

  Status Seal(Block* block) const override;
  Status ValidateSeal(const BlockHeader& header) const override;

  /// The authority whose turn it is at `height` (round robin).
  const crypto::Address& AuthorityForHeight(uint64_t height) const;
  const std::vector<crypto::Address>& authorities() const {
    return authorities_;
  }

 private:
  std::vector<crypto::Address> authorities_;
  std::shared_ptr<const crypto::KeyPair> signer_;
};

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_SEALER_H_
