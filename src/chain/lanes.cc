#include "chain/lanes.h"

namespace medsync::chain {

uint64_t StableLaneHash(const std::string& key) {
  // FNV-1a, 64-bit. Chosen over std::hash for cross-toolchain stability.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint32_t LaneForKey(const std::string& key, size_t lane_count) {
  if (lane_count <= 1) return 0;
  return static_cast<uint32_t>(StableLaneHash(key) %
                               static_cast<uint64_t>(lane_count));
}

LaneAssignFn MakeLaneAssign(LaneKeyFn lane_key, size_t lane_count) {
  return [lane_key = std::move(lane_key),
          lane_count](const Transaction& tx) -> uint32_t {
    if (lane_count <= 1) return 0;
    std::optional<std::string> key = lane_key ? lane_key(tx) : std::nullopt;
    if (!key.has_value()) return 0;
    return LaneForKey(*key, lane_count);
  };
}

}  // namespace medsync::chain
