#include "chain/sealer.h"

#include "common/strings.h"

namespace medsync::chain {

Status PowSealer::Seal(Block* block) const {
  BlockHeader& header = block->header;
  header.difficulty = difficulty_bits_;
  header.sealer = crypto::Address::Zero();
  header.seal = crypto::Signature{};
  for (uint64_t nonce = 0;; ++nonce) {
    header.pow_nonce = nonce;
    if (MeetsDifficulty(header.Hash(), difficulty_bits_)) {
      return Status::OK();
    }
    if (nonce == UINT64_MAX) break;
  }
  return Status::ResourceExhausted("PoW nonce space exhausted");
}

Status PowSealer::ValidateSeal(const BlockHeader& header) const {
  if (header.difficulty < difficulty_bits_) {
    return Status::InvalidArgument(
        StrCat("block difficulty ", header.difficulty,
               " below required ", difficulty_bits_));
  }
  if (!MeetsDifficulty(header.Hash(), header.difficulty)) {
    return Status::Corruption("block hash does not meet claimed difficulty");
  }
  return Status::OK();
}

PoaSealer::PoaSealer(std::vector<crypto::Address> authorities,
                     std::shared_ptr<const crypto::KeyPair> signer)
    : authorities_(std::move(authorities)), signer_(std::move(signer)) {}

const crypto::Address& PoaSealer::AuthorityForHeight(uint64_t height) const {
  return authorities_[height % authorities_.size()];
}

Status PoaSealer::Seal(Block* block) const {
  if (signer_ == nullptr) {
    return Status::FailedPrecondition("this node has no sealing key");
  }
  BlockHeader& header = block->header;
  if (signer_->address() != AuthorityForHeight(header.height)) {
    return Status::PermissionDenied(
        StrCat("not this authority's turn at height ", header.height));
  }
  header.difficulty = 0;
  header.pow_nonce = 0;
  header.sealer = signer_->address();
  header.seal = signer_->Sign(header.SealDigest().ToHex());
  return Status::OK();
}

Status PoaSealer::ValidateSeal(const BlockHeader& header) const {
  if (authorities_.empty()) {
    return Status::FailedPrecondition("empty authority set");
  }
  const crypto::Address& expected = AuthorityForHeight(header.height);
  if (header.sealer != expected) {
    return Status::PermissionDenied(
        StrCat("block at height ", header.height,
               " sealed by the wrong authority"));
  }
  if (crypto::Address::FromPublicKey(header.seal.pub_hint) != header.sealer) {
    return Status::PermissionDenied("seal key does not match sealer address");
  }
  if (!crypto::KeyPair::Verify(header.seal.pub_hint,
                               header.SealDigest().ToHex(), header.seal)) {
    return Status::Corruption("invalid authority seal signature");
  }
  return Status::OK();
}

}  // namespace medsync::chain
