#include "chain/sealer.h"

#include <atomic>

#include "common/strings.h"
#include "common/threading/thread_pool.h"

namespace medsync::chain {

namespace {
/// Nonces each PoW worker claims per grab. Small enough that workers stop
/// quickly after a hit, large enough that the claim counter is not
/// contended (one atomic op per kPowChunk hashes).
constexpr uint64_t kPowChunk = 512;
}  // namespace

Status PowSealer::Seal(Block* block) const {
  BlockHeader& header = block->header;
  header.difficulty = difficulty_bits_;
  header.sealer = crypto::Address::Zero();
  header.seal = crypto::Signature{};
  metrics::Inc(seal_attempts_);
  Status status = (pool_ != nullptr && pool_->worker_count() > 1)
                      ? SealParallel(&header)
                      : SealSerial(&header);
  if (status.ok()) {
    metrics::Inc(sealed_);
    metrics::Inc(nonces_scanned_, header.pow_nonce + 1);
  } else if (status.IsResourceExhausted()) {
    metrics::Inc(exhausted_);
    metrics::Inc(nonces_scanned_, max_nonce_ + 1);
  }
  return status;
}

void PowSealer::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    seal_attempts_ = sealed_ = exhausted_ = nonces_scanned_ = nullptr;
    return;
  }
  seal_attempts_ = registry->GetCounter("chain.pow.seal_attempts");
  sealed_ = registry->GetCounter("chain.pow.sealed");
  exhausted_ = registry->GetCounter("chain.pow.exhausted");
  nonces_scanned_ = registry->GetCounter("chain.pow.nonces_scanned");
}

Status PowSealer::SealSerial(BlockHeader* header) const {
  for (uint64_t nonce = 0;; ++nonce) {
    header->pow_nonce = nonce;
    if (MeetsDifficulty(header->Hash(), difficulty_bits_)) {
      return Status::OK();
    }
    if (nonce == max_nonce_) break;
  }
  return Status::ResourceExhausted("PoW nonce space exhausted");
}

Status PowSealer::SealParallel(BlockHeader* header) const {
  // Workers claim consecutive kPowChunk-sized nonce ranges from a shared
  // counter and race to lower `best`, the smallest satisfying nonce found
  // so far. Because ranges are claimed in increasing order and a claimed
  // range is always scanned up to min(range end, best), every nonce below
  // the final `best` has been tested by SOME worker when the group joins —
  // so `best` is the global minimum, identical to the serial scan's result.
  std::atomic<uint64_t> next_chunk{0};
  std::atomic<uint64_t> best{UINT64_MAX};
  std::atomic<bool> found{false};
  const uint64_t chunk_count = max_nonce_ / kPowChunk + 1;

  auto search = [&, header_copy = *header]() mutable {
    while (true) {
      const uint64_t chunk = next_chunk.fetch_add(1);
      if (chunk >= chunk_count) return;
      const uint64_t begin = chunk * kPowChunk;
      if (found.load(std::memory_order_acquire) && begin > best.load()) {
        return;  // Every nonce below the current best is already covered.
      }
      const uint64_t end =
          std::min(max_nonce_, begin + (kPowChunk - 1));  // inclusive
      for (uint64_t nonce = begin;; ++nonce) {
        if (found.load(std::memory_order_relaxed) && nonce > best.load()) {
          break;  // This chunk can no longer improve on the best hit.
        }
        header_copy.pow_nonce = nonce;
        if (MeetsDifficulty(header_copy.Hash(), difficulty_bits_)) {
          uint64_t prev = best.load();
          while (nonce < prev && !best.compare_exchange_weak(prev, nonce)) {
          }
          found.store(true, std::memory_order_release);
          break;  // Lower nonces of this chunk were already scanned.
        }
        if (nonce == end) break;
      }
    }
  };

  threading::TaskGroup group(pool_);
  for (size_t i = 0; i < pool_->worker_count(); ++i) group.Run(search);
  group.Wait();

  if (!found.load()) {
    return Status::ResourceExhausted("PoW nonce space exhausted");
  }
  header->pow_nonce = best.load();
  return Status::OK();
}

Status PowSealer::ValidateSeal(const BlockHeader& header) const {
  if (header.difficulty < difficulty_bits_) {
    return Status::InvalidArgument(
        StrCat("block difficulty ", header.difficulty,
               " below required ", difficulty_bits_));
  }
  if (!MeetsDifficulty(header.Hash(), header.difficulty)) {
    return Status::Corruption("block hash does not meet claimed difficulty");
  }
  return Status::OK();
}

PoaSealer::PoaSealer(std::vector<crypto::Address> authorities,
                     std::shared_ptr<const crypto::KeyPair> signer,
                     Micros slot_interval)
    : authorities_(std::move(authorities)), signer_(std::move(signer)),
      slot_interval_(slot_interval) {}

const crypto::Address& PoaSealer::AuthorityForHeight(uint64_t height) const {
  return authorities_[height % authorities_.size()];
}

const crypto::Address& PoaSealer::AuthorityFor(
    const BlockHeader& header) const {
  if (slot_interval_ > 0) {
    const uint64_t slot =
        static_cast<uint64_t>(header.timestamp) /
        static_cast<uint64_t>(slot_interval_);
    return authorities_[slot % authorities_.size()];
  }
  return AuthorityForHeight(header.height);
}

Status PoaSealer::Seal(Block* block) const {
  if (signer_ == nullptr) {
    return Status::FailedPrecondition("this node has no sealing key");
  }
  BlockHeader& header = block->header;
  if (signer_->address() != AuthorityFor(header)) {
    return Status::PermissionDenied(
        StrCat("not this authority's turn at height ", header.height));
  }
  header.difficulty = 0;
  header.pow_nonce = 0;
  header.sealer = signer_->address();
  header.seal = signer_->Sign(header.SealDigest().ToHex());
  return Status::OK();
}

Status PoaSealer::ValidateSeal(const BlockHeader& header) const {
  if (authorities_.empty()) {
    return Status::FailedPrecondition("empty authority set");
  }
  const crypto::Address& expected = AuthorityFor(header);
  if (header.sealer != expected) {
    return Status::PermissionDenied(
        StrCat("block at height ", header.height,
               " sealed by the wrong authority"));
  }
  if (crypto::Address::FromPublicKey(header.seal.pub_hint) != header.sealer) {
    return Status::PermissionDenied("seal key does not match sealer address");
  }
  if (!crypto::KeyPair::Verify(header.seal.pub_hint,
                               header.SealDigest().ToHex(), header.seal)) {
    return Status::Corruption("invalid authority seal signature");
  }
  return Status::OK();
}

}  // namespace medsync::chain
