#ifndef MEDSYNC_CHAIN_BLOCK_H_
#define MEDSYNC_CHAIN_BLOCK_H_

#include <string>
#include <vector>

#include "chain/transaction.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace medsync::threading {
class ThreadPool;
}  // namespace medsync::threading

namespace medsync::chain {

/// Block header. `difficulty`/`pow_nonce` are used in proof-of-work mode;
/// `sealer`/`seal` in proof-of-authority mode (the paper suggests a private
/// chain, Section IV-3, which PoA models; PoW models the public-Ethereum
/// deployment it compares against).
struct BlockHeader {
  uint64_t height = 0;
  uint32_t lane = 0;          // chain lane this block extends (sharding)
  crypto::Hash256 parent;
  crypto::Hash256 merkle_root;
  Micros timestamp = 0;
  uint32_t difficulty = 0;    // required leading zero bits (PoW)
  uint64_t pow_nonce = 0;     // search nonce (PoW)
  crypto::Address sealer;     // sealing authority (PoA), zero for PoW
  crypto::Signature seal;     // authority signature over SealDigest (PoA)

  /// The block id: hash over every header field including the seal.
  crypto::Hash256 Hash() const;

  /// Pre-image the PoA authority signs (everything except `seal`). PoW
  /// searches pow_nonce so that Hash() meets the difficulty on this digest
  /// too — both modes bind the same fields.
  crypto::Hash256 SealDigest() const;

  Json ToJson() const;
  static Result<BlockHeader> FromJson(const Json& json);
};

/// A full block: header plus the ordered transaction list the Merkle root
/// commits to.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// `pool` (optional) parallelizes leaf digests and tree levels; the root
  /// is identical to the serial computation.
  crypto::Hash256 ComputeMerkleRoot(threading::ThreadPool* pool = nullptr)
      const;

  /// Leaf digests (transaction ids) in block order. Each leaf is a
  /// canonical-JSON dump plus SHA-256 — the dominant cost of the root — so
  /// leaves are computed in parallel when a pool is given.
  std::vector<crypto::Hash256> TransactionLeaves(
      threading::ThreadPool* pool = nullptr) const;

  Json ToJson() const;
  static Result<Block> FromJson(const Json& json);
};

/// True if `hash` has at least `difficulty` leading zero BITS.
bool MeetsDifficulty(const crypto::Hash256& hash, uint32_t difficulty);

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_BLOCK_H_
