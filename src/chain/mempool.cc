#include "chain/mempool.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace medsync::chain {

Mempool::Mempool(ConflictKeyFn conflict_key, size_t capacity)
    : conflict_key_(std::move(conflict_key)), capacity_(capacity) {}

void Mempool::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    adds_ = reject_duplicate_ = reject_full_ = reject_bad_signature_ = nullptr;
    occupancy_ = nullptr;
    return;
  }
  adds_ = registry->GetCounter("mempool.adds");
  reject_duplicate_ = registry->GetCounter("mempool.reject.duplicate");
  reject_full_ = registry->GetCounter("mempool.reject.full");
  reject_bad_signature_ = registry->GetCounter("mempool.reject.bad_signature");
  occupancy_ = registry->GetGauge("mempool.occupancy");
}

Status Mempool::Add(Transaction tx) {
  // Dedup BEFORE the capacity check: a full pool re-receiving an already
  // pooled transaction is a benign duplicate, not backpressure.
  std::string id = tx.Id().ToHex();
  if (ids_.count(id) > 0) {
    metrics::Inc(reject_duplicate_);
    return Status::AlreadyExists(
        StrCat("transaction ", id.substr(0, 8), " already pooled"));
  }
  // Signature BEFORE capacity: ResourceExhausted is retryable backpressure
  // (ReliableChannel retransmits on it), while a bad signature is a
  // permanent reject. Checking capacity first would make a full pool report
  // unacceptable garbage as retryable, so peers would retransmit it forever
  // and mempool.reject.bad_signature would undercount.
  if (!tx.VerifySignature()) {
    metrics::Inc(reject_bad_signature_);
    return Status::PermissionDenied(
        StrCat("transaction ", tx.Id().ShortHex(), " has a bad signature"));
  }
  if (queue_.size() >= capacity_) {
    metrics::Inc(reject_full_);
    return Status::ResourceExhausted("mempool full");
  }
  ids_.insert(std::move(id));
  queue_.push_back(std::move(tx));
  metrics::Inc(adds_);
  metrics::GaugeAdd(occupancy_, 1);
  return Status::OK();
}

bool Mempool::Contains(const crypto::Hash256& id) const {
  return ids_.count(id.ToHex()) > 0;
}

std::vector<Transaction> Mempool::BuildBlockCandidate(size_t max_count,
                                                      size_t* deferred) const {
  // Phase 1 — canonical order. Gossip can deliver one sender's transactions
  // out of order (network jitter), but a deploy must execute before calls
  // to the deployed contract. Restore per-sender nonce order while
  // preserving the arrival order of senders' slots: collect each sender's
  // pooled transactions sorted by nonce, then refill the queue positions.
  // stable_sort, not sort: equal nonces (a sender re-keying after a crash,
  // or a buggy client) must keep arrival order on every standard library,
  // or candidate bytes diverge across toolchains.
  std::map<std::string, std::vector<const Transaction*>> per_sender;
  for (const Transaction& tx : queue_) {
    per_sender[tx.from.ToHex()].push_back(&tx);
  }
  for (auto& [sender, txs] : per_sender) {
    std::stable_sort(txs.begin(), txs.end(),
                     [](const Transaction* a, const Transaction* b) {
                       return a->nonce < b->nonce;
                     });
  }
  std::map<std::string, size_t> cursor;
  std::vector<const Transaction*> ordered;
  ordered.reserve(queue_.size());
  for (const Transaction& slot : queue_) {
    std::string sender = slot.from.ToHex();
    ordered.push_back(per_sender[sender][cursor[sender]++]);
  }

  // Phase 2 — deterministic conflict partition. One pass over the canonical
  // order splits it into {batch, deferred}: a transaction joins the batch
  // iff the batch has room and its conflict key is unclaimed; otherwise it
  // defers to a later block (it stays pooled — "next block's problem").
  // Non-conflicting updates to distinct tables thus batch into one block
  // while the per-table serialization rule holds.
  std::vector<Transaction> selected;
  std::set<std::string> used_keys;
  size_t held_back = 0;
  for (const Transaction* tx_ptr : ordered) {
    const Transaction& tx = *tx_ptr;
    if (selected.size() >= max_count) {
      ++held_back;
      continue;
    }
    if (conflict_key_) {
      std::optional<std::string> key = conflict_key_(tx);
      if (key.has_value()) {
        if (used_keys.count(*key) > 0) {
          ++held_back;
          continue;
        }
        used_keys.insert(*key);
      }
    }
    selected.push_back(tx);
  }
  if (deferred != nullptr) *deferred = held_back;
  return selected;
}

void Mempool::RemoveIncluded(const std::set<std::string>& included_ids) {
  std::deque<Transaction> kept;
  for (Transaction& tx : queue_) {
    std::string id = tx.Id().ToHex();
    if (included_ids.count(id) > 0) {
      ids_.erase(id);
    } else {
      kept.push_back(std::move(tx));
    }
  }
  metrics::GaugeAdd(occupancy_,
                    static_cast<int64_t>(kept.size()) -
                        static_cast<int64_t>(queue_.size()));
  queue_ = std::move(kept);
}

void Mempool::Remove(const crypto::Hash256& id) {
  std::set<std::string> one{id.ToHex()};
  RemoveIncluded(one);
}

}  // namespace medsync::chain
