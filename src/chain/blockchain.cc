#include "chain/blockchain.h"

#include <cassert>

#include "common/strings.h"
#include "common/threading/thread_pool.h"

namespace medsync::chain {

Block Blockchain::MakeGenesis(Micros timestamp, uint32_t lane) {
  Block genesis;
  genesis.header.height = 0;
  genesis.header.lane = lane;
  genesis.header.parent = crypto::Hash256::Zero();
  genesis.header.timestamp = timestamp;
  genesis.header.merkle_root = genesis.ComputeMerkleRoot();
  return genesis;
}

Blockchain::Blockchain(Block genesis, const Sealer* sealer,
                       ConflictKeyFn conflict_key, threading::ThreadPool* pool)
    : sealer_(sealer), conflict_key_(std::move(conflict_key)), pool_(pool),
      lane_(genesis.header.lane) {
  assert(genesis.header.height == 0);
  genesis_hash_ = genesis.header.Hash();
  head_hash_ = genesis_hash_;
  Node node;
  node.block = std::move(genesis);
  blocks_.emplace(genesis_hash_.ToHex(), std::move(node));
}

void Blockchain::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    validate_ok_ = validate_fail_ = blocks_accepted_ = nullptr;
    block_txs_ = nullptr;
    return;
  }
  validate_ok_ = registry->GetCounter("chain.validate.ok");
  validate_fail_ = registry->GetCounter("chain.validate.fail");
  blocks_accepted_ = registry->GetCounter("chain.blocks.accepted");
  block_txs_ = registry->GetHistogram("chain.block_txs");
}

Status Blockchain::ValidateStructure(const Block& block) const {
  Status status = ValidateStructureImpl(block);
  metrics::Inc(status.ok() ? validate_ok_ : validate_fail_);
  return status;
}

Status Blockchain::ValidateStructureImpl(const Block& block) const {
  if (block.header.merkle_root != block.ComputeMerkleRoot(pool_)) {
    return Status::Corruption("merkle root does not match transactions");
  }
  if (block.header.height > 0) {
    MEDSYNC_RETURN_IF_ERROR(sealer_->ValidateSeal(block.header));
  }
  // Signature checks are independent per transaction, so with a pool they
  // run concurrently up front; each result lands in its own slot. The
  // per-transaction rule loop below then consumes the precomputed verdicts
  // in block order, so which violation is REPORTED (signature vs duplicate
  // vs conflict, and for which transaction) matches the serial path
  // exactly.
  std::vector<uint8_t> sig_ok(block.transactions.size(), 0);
  threading::ParallelFor(pool_, 0, block.transactions.size(), /*grain=*/4,
                         [&block, &sig_ok](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             sig_ok[i] = block.transactions[i]
                                             .VerifySignature();
                           }
                         });
  std::set<std::string> seen_ids;
  std::set<std::string> conflict_keys;
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    const Transaction& tx = block.transactions[i];
    if (!sig_ok[i]) {
      return Status::PermissionDenied(
          StrCat("transaction ", tx.Id().ShortHex(), " has a bad signature"));
    }
    if (!seen_ids.insert(tx.Id().ToHex()).second) {
      return Status::InvalidArgument(
          StrCat("duplicate transaction ", tx.Id().ShortHex(), " in block"));
    }
    if (conflict_key_) {
      std::optional<std::string> key = conflict_key_(tx);
      if (key.has_value() && !conflict_keys.insert(*key).second) {
        return Status::Conflict(
            StrCat("block carries two transactions touching shared data '",
                   *key, "' (one-update-per-block rule)"));
      }
    }
  }
  return Status::OK();
}

bool Blockchain::TxInAncestry(const crypto::Hash256& start_hash,
                              const std::string& tx_id) const {
  std::string cursor = start_hash.ToHex();
  while (true) {
    auto it = blocks_.find(cursor);
    if (it == blocks_.end()) return false;
    if (it->second.tx_ids.count(tx_id) > 0) return true;
    if (it->second.block.header.height == 0) return false;
    cursor = it->second.block.header.parent.ToHex();
  }
}

Status Blockchain::AddBlock(Block block) {
  const std::string hash_hex = block.header.Hash().ToHex();
  if (blocks_.count(hash_hex) > 0) {
    return Status::AlreadyExists(StrCat("block ", hash_hex.substr(0, 8),
                                        " already known"));
  }
  if (block.header.lane != lane_) {
    return Status::InvalidArgument(
        StrCat("block ", hash_hex.substr(0, 8), " is stamped for lane ",
               block.header.lane, " but this chain seals lane ", lane_));
  }
  auto parent_it = blocks_.find(block.header.parent.ToHex());
  if (parent_it == blocks_.end()) {
    return Status::NotFound(StrCat("parent of block ", hash_hex.substr(0, 8),
                                   " unknown (orphan)"));
  }
  const Block& parent = parent_it->second.block;
  if (block.header.height != parent.header.height + 1) {
    return Status::InvalidArgument(
        StrCat("block height ", block.header.height,
               " does not follow parent height ", parent.header.height));
  }
  if (block.header.timestamp < parent.header.timestamp) {
    return Status::InvalidArgument("block timestamp precedes its parent");
  }
  MEDSYNC_RETURN_IF_ERROR(ValidateStructure(block));

  Node node;
  for (const Transaction& tx : block.transactions) {
    std::string tx_id = tx.Id().ToHex();
    if (TxInAncestry(block.header.parent, tx_id)) {
      return Status::AlreadyExists(
          StrCat("transaction ", tx_id.substr(0, 8),
                 " already included in an ancestor block"));
    }
    node.tx_ids.insert(std::move(tx_id));
  }

  uint64_t new_height = block.header.height;
  metrics::Inc(blocks_accepted_);
  metrics::Observe(block_txs_, block.transactions.size());
  node.block = std::move(block);
  blocks_.emplace(hash_hex, std::move(node));

  // Longest-chain fork choice; ties break toward the smaller hash so every
  // node picks the same head given the same block set.
  const Block& current_head = head();
  if (new_height > current_head.header.height ||
      (new_height == current_head.header.height &&
       hash_hex < head_hash_.ToHex())) {
    bool ok = false;
    head_hash_ = crypto::Hash256::FromHex(hash_hex, &ok);
    assert(ok);
  }
  return Status::OK();
}

const Block& Blockchain::genesis() const {
  return blocks_.at(genesis_hash_.ToHex()).block;
}

const Block& Blockchain::head() const {
  return blocks_.at(head_hash_.ToHex()).block;
}

Result<const Block*> Blockchain::BlockByHash(
    const crypto::Hash256& hash) const {
  auto it = blocks_.find(hash.ToHex());
  if (it == blocks_.end()) {
    return Status::NotFound(StrCat("no block ", hash.ShortHex()));
  }
  return &it->second.block;
}

Result<const Block*> Blockchain::BlockByHeight(uint64_t height) const {
  if (height > head().header.height) {
    return Status::NotFound(StrCat("no block at height ", height));
  }
  const Block* cursor = &head();
  while (cursor->header.height > height) {
    auto it = blocks_.find(cursor->header.parent.ToHex());
    if (it == blocks_.end()) {
      return Status::Corruption("broken parent linkage on canonical chain");
    }
    cursor = &it->second.block;
  }
  return cursor;
}

std::vector<const Block*> Blockchain::CanonicalChain() const {
  std::vector<const Block*> chain;
  const Block* cursor = &head();
  while (true) {
    chain.push_back(cursor);
    if (cursor->header.height == 0) break;
    cursor = &blocks_.at(cursor->header.parent.ToHex()).block;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool Blockchain::FindTransaction(const crypto::Hash256& id,
                                 const Transaction** tx,
                                 uint64_t* block_height) const {
  std::string id_hex = id.ToHex();
  for (const Block* block : CanonicalChain()) {
    for (const Transaction& candidate : block->transactions) {
      if (candidate.Id().ToHex() == id_hex) {
        if (tx) *tx = &candidate;
        if (block_height) *block_height = block->header.height;
        return true;
      }
    }
  }
  return false;
}

Status Blockchain::VerifyIntegrity() const {
  std::vector<const Block*> chain = CanonicalChain();
  for (size_t i = 0; i < chain.size(); ++i) {
    const Block& block = *chain[i];
    if (i > 0) {
      if (block.header.parent != chain[i - 1]->header.Hash()) {
        return Status::Corruption(
            StrCat("hash linkage broken at height ", block.header.height));
      }
      MEDSYNC_RETURN_IF_ERROR(
          ValidateStructure(block).WithPrefix(
              StrCat("integrity check failed at height ",
                     block.header.height)));
    }
  }
  return Status::OK();
}

}  // namespace medsync::chain
