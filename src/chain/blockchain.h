#ifndef MEDSYNC_CHAIN_BLOCKCHAIN_H_
#define MEDSYNC_CHAIN_BLOCKCHAIN_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/sealer.h"

namespace medsync::chain {

/// A validated block tree with longest-chain fork choice.
///
/// Beyond structural validation (parent linkage, Merkle root, seal,
/// transaction signatures), the chain enforces the paper's ordering rule
/// from Section III-B: "one block can contain one transaction at most on
/// some shared data at one time". The rule is injected as a `ConflictKeyFn`
/// that maps a transaction to the shared-data id it touches (or nullopt for
/// non-conflicting transactions); a block carrying two transactions with
/// the same key is invalid everywhere, so no sealer can sneak concurrent
/// updates to one shared table into a single block.
class Blockchain {
 public:
  using ConflictKeyFn =
      std::function<std::optional<std::string>(const Transaction&)>;

  /// `sealer` validates seals of incoming blocks; it must outlive the
  /// chain. `conflict_key` may be null (rule disabled). `pool` (optional,
  /// must outlive the chain) parallelizes block validation — transaction
  /// signature checks and the Merkle-root recomputation; a null pool keeps
  /// validation fully serial.
  Blockchain(Block genesis, const Sealer* sealer,
             ConflictKeyFn conflict_key = nullptr,
             threading::ThreadPool* pool = nullptr);

  void set_thread_pool(threading::ThreadPool* pool) { pool_ = pool; }

  /// Attaches chain.validate.ok/fail, chain.blocks.accepted and the
  /// chain.block_txs histogram. The registry must outlive the chain;
  /// nullptr detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

  /// A deterministic genesis block (height 0, zero parent, no seal).
  /// `lane` stamps the genesis header so per-lane chains hash distinctly
  /// and every descendant block is pinned to the lane (see AddBlock).
  static Block MakeGenesis(Micros timestamp, uint32_t lane = 0);

  /// Validates and inserts `block`. Returns:
  ///  * OK — inserted (the head may or may not have changed);
  ///  * NotFound — parent unknown (orphan; caller should fetch the parent);
  ///  * AlreadyExists — duplicate block;
  ///  * anything else — the block is invalid and was rejected.
  Status AddBlock(Block block);

  /// Validation only (everything except parent-linkage checks); exposed for
  /// tests and for mempool candidate vetting.
  Status ValidateStructure(const Block& block) const;

  const Block& genesis() const;
  const Block& head() const;
  /// The lane this chain seals (from the genesis header). AddBlock rejects
  /// blocks stamped for another lane, so one lane's history can never
  /// splice into another's even if a hash collision of heights occurs.
  uint32_t lane() const { return lane_; }
  uint64_t height() const { return head().header.height; }
  size_t block_count() const { return blocks_.size(); }

  Result<const Block*> BlockByHash(const crypto::Hash256& hash) const;

  /// The block at `height` on the CANONICAL (head) chain.
  Result<const Block*> BlockByHeight(uint64_t height) const;

  /// Genesis..head, in height order.
  std::vector<const Block*> CanonicalChain() const;

  /// Whether the canonical chain includes transaction `id`; if found and
  /// the out-params are non-null, reports where.
  bool FindTransaction(const crypto::Hash256& id, const Transaction** tx,
                       uint64_t* block_height) const;

  /// Re-validates every block on the canonical chain from genesis — the
  /// audit-mode tamper check (any bit flipped in a stored block breaks its
  /// hash linkage or Merkle root).
  Status VerifyIntegrity() const;

 private:
  struct Node {
    Block block;
    std::set<std::string> tx_ids;  // hex ids, for duplicate detection
  };

  /// Whether `tx_id` appears in `start` or any of its ancestors.
  bool TxInAncestry(const crypto::Hash256& start_hash,
                    const std::string& tx_id) const;

  /// ValidateStructure minus the ok/fail accounting.
  Status ValidateStructureImpl(const Block& block) const;

  const Sealer* sealer_;
  ConflictKeyFn conflict_key_;
  threading::ThreadPool* pool_;
  uint32_t lane_ = 0;
  std::map<std::string, Node> blocks_;  // keyed by hex block hash
  crypto::Hash256 genesis_hash_;
  crypto::Hash256 head_hash_;

  metrics::Counter* validate_ok_ = nullptr;
  metrics::Counter* validate_fail_ = nullptr;
  metrics::Counter* blocks_accepted_ = nullptr;
  metrics::Histogram* block_txs_ = nullptr;
};

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_BLOCKCHAIN_H_
