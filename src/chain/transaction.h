#ifndef MEDSYNC_CHAIN_TRANSACTION_H_
#define MEDSYNC_CHAIN_TRANSACTION_H_

#include <string>

#include "common/clock.h"
#include "common/json.h"
#include "common/result.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace medsync::chain {

/// A signed smart-contract transaction. `to` is the target contract address
/// (the zero address deploys a new contract whose type is named by
/// `method`). `params` is the JSON call payload — the contract ABI of this
/// system.
struct Transaction {
  crypto::Address from;
  crypto::Address to;
  uint64_t nonce = 0;
  std::string method;
  Json params;
  Micros timestamp = 0;
  crypto::Signature signature;

  /// Hash of the canonical serialization WITHOUT the signature — what gets
  /// signed, and the transaction's identity.
  crypto::Hash256 Digest() const;
  crypto::Hash256 Id() const { return Digest(); }

  /// Signs in place with `key` (which must own `from`).
  void Sign(const crypto::KeyPair& key);

  /// Checks that the signature verifies and that the signer's key actually
  /// controls the `from` address.
  bool VerifySignature() const;

  Json ToJson() const;
  static Result<Transaction> FromJson(const Json& json);
};

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_TRANSACTION_H_
