#ifndef MEDSYNC_CHAIN_LANES_H_
#define MEDSYNC_CHAIN_LANES_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "chain/transaction.h"

namespace medsync::chain {

/// Lane-affinity key for a transaction. Transactions that must stay
/// relatively ordered (e.g. every operation touching one shared table,
/// including acks and permission changes — a pending ack gates the next
/// update request) return the SAME key so they land on the same lane;
/// nullopt routes to lane 0 (contract deploys, unkeyed calls).
///
/// Distinct from Mempool::ConflictKeyFn: the conflict key only marks
/// `request_update` (the paper's one-update-per-table-per-block rule),
/// while the lane key must cover every table-scoped method, or an ack
/// could seal on a different lane than the update it unblocks.
using LaneKeyFn = std::function<std::optional<std::string>(const Transaction&)>;

/// Deterministic transaction -> lane index mapping (values in
/// [0, lane_count)). Every node in a network must use the same function
/// or gossip would pool a transaction on different lanes at different
/// nodes and lanes would seal conflicting histories.
using LaneAssignFn = std::function<uint32_t(const Transaction&)>;

/// 64-bit FNV-1a over `key`. Platform- and toolchain-stable (no
/// std::hash), so lane assignment is part of the determinism contract:
/// the same key maps to the same lane on every build.
uint64_t StableLaneHash(const std::string& key);

/// Lane index for an affinity key: StableLaneHash(key) % lane_count.
/// Exposed separately so scenario code can locate the lane a table's
/// history seals on (audit-trail lookup) without a Transaction in hand.
uint32_t LaneForKey(const std::string& key, size_t lane_count);

/// Builds the default LaneAssignFn: LaneForKey over `lane_key`, with
/// keyless transactions pinned to lane 0. lane_count == 1 always yields
/// lane 0 (the single-chain configuration is the degenerate case, not a
/// special path).
LaneAssignFn MakeLaneAssign(LaneKeyFn lane_key, size_t lane_count);

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_LANES_H_
