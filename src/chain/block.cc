#include "chain/block.h"

#include "common/threading/thread_pool.h"

namespace medsync::chain {

namespace {
Json HeaderJsonWithoutSeal(const BlockHeader& header) {
  Json out = Json::MakeObject();
  out.Set("height", header.height);
  out.Set("lane", static_cast<int64_t>(header.lane));
  out.Set("parent", header.parent.ToHex());
  out.Set("merkle_root", header.merkle_root.ToHex());
  out.Set("timestamp", header.timestamp);
  out.Set("difficulty", static_cast<int64_t>(header.difficulty));
  out.Set("pow_nonce", header.pow_nonce);
  out.Set("sealer", header.sealer.ToHex());
  return out;
}
}  // namespace

crypto::Hash256 BlockHeader::SealDigest() const {
  return crypto::Sha256::Hash(HeaderJsonWithoutSeal(*this).Dump());
}

crypto::Hash256 BlockHeader::Hash() const {
  Json full = HeaderJsonWithoutSeal(*this);
  full.Set("seal", seal.ToHex());
  return crypto::Sha256::Hash(full.Dump());
}

Json BlockHeader::ToJson() const {
  Json out = HeaderJsonWithoutSeal(*this);
  Json seal_json = Json::MakeObject();
  seal_json.Set("mac", seal.mac.ToHex());
  seal_json.Set("pub", seal.pub_hint.ToHex());
  out.Set("seal", std::move(seal_json));
  return out;
}

Result<BlockHeader> BlockHeader::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("block header JSON must be an object");
  }
  BlockHeader header;
  bool ok = false;
  MEDSYNC_ASSIGN_OR_RETURN(int64_t height, json.GetInt("height"));
  header.height = static_cast<uint64_t>(height);
  MEDSYNC_ASSIGN_OR_RETURN(int64_t lane, json.GetInt("lane"));
  header.lane = static_cast<uint32_t>(lane);
  MEDSYNC_ASSIGN_OR_RETURN(std::string parent_hex, json.GetString("parent"));
  header.parent = crypto::Hash256::FromHex(parent_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad parent hash");
  MEDSYNC_ASSIGN_OR_RETURN(std::string root_hex,
                           json.GetString("merkle_root"));
  header.merkle_root = crypto::Hash256::FromHex(root_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad merkle root");
  MEDSYNC_ASSIGN_OR_RETURN(header.timestamp, json.GetInt("timestamp"));
  MEDSYNC_ASSIGN_OR_RETURN(int64_t difficulty, json.GetInt("difficulty"));
  header.difficulty = static_cast<uint32_t>(difficulty);
  MEDSYNC_ASSIGN_OR_RETURN(int64_t pow_nonce, json.GetInt("pow_nonce"));
  header.pow_nonce = static_cast<uint64_t>(pow_nonce);
  MEDSYNC_ASSIGN_OR_RETURN(std::string sealer_hex, json.GetString("sealer"));
  header.sealer = crypto::Address::FromHex(sealer_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad sealer address");

  const Json& seal = json.At("seal");
  MEDSYNC_ASSIGN_OR_RETURN(std::string mac_hex, seal.GetString("mac"));
  header.seal.mac = crypto::Hash256::FromHex(mac_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad seal mac");
  MEDSYNC_ASSIGN_OR_RETURN(std::string pub_hex, seal.GetString("pub"));
  header.seal.pub_hint = crypto::Hash256::FromHex(pub_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad seal pub hint");
  return header;
}

std::vector<crypto::Hash256> Block::TransactionLeaves(
    threading::ThreadPool* pool) const {
  std::vector<crypto::Hash256> leaves(transactions.size());
  threading::ParallelFor(pool, 0, transactions.size(), /*grain=*/4,
                         [this, &leaves](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             leaves[i] = transactions[i].Id();
                           }
                         });
  return leaves;
}

crypto::Hash256 Block::ComputeMerkleRoot(threading::ThreadPool* pool) const {
  return crypto::MerkleTree::ComputeRoot(TransactionLeaves(pool), pool);
}

Json Block::ToJson() const {
  Json txs = Json::MakeArray();
  for (const Transaction& tx : transactions) txs.Append(tx.ToJson());
  Json out = Json::MakeObject();
  out.Set("header", header.ToJson());
  out.Set("transactions", std::move(txs));
  return out;
}

Result<Block> Block::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("block JSON must be an object");
  }
  Block block;
  MEDSYNC_ASSIGN_OR_RETURN(block.header,
                           BlockHeader::FromJson(json.At("header")));
  const Json& txs = json.At("transactions");
  if (!txs.is_array()) {
    return Status::InvalidArgument("block JSON needs 'transactions' array");
  }
  for (const Json& t : txs.AsArray()) {
    MEDSYNC_ASSIGN_OR_RETURN(Transaction tx, Transaction::FromJson(t));
    block.transactions.push_back(std::move(tx));
  }
  return block;
}

bool MeetsDifficulty(const crypto::Hash256& hash, uint32_t difficulty) {
  uint32_t remaining = difficulty;
  for (uint8_t byte : hash.bytes) {
    if (remaining == 0) return true;
    if (remaining >= 8) {
      if (byte != 0) return false;
      remaining -= 8;
    } else {
      return (byte >> (8 - remaining)) == 0;
    }
  }
  return remaining == 0;
}

}  // namespace medsync::chain
