#ifndef MEDSYNC_CHAIN_MEMPOOL_H_
#define MEDSYNC_CHAIN_MEMPOOL_H_

#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chain/transaction.h"
#include "common/metrics/metrics.h"
#include "common/status.h"

namespace medsync::chain {

/// Pending-transaction pool. Arrival order is preserved ("smart contracts
/// dispose of the updates according to received requests in chronological
/// order", Section III-B), and block building honours the one-transaction-
/// per-shared-data-per-block rule via the same ConflictKeyFn the chain
/// validates with: a second update to the same shared table stays pooled
/// for the NEXT block instead of being dropped.
class Mempool {
 public:
  using ConflictKeyFn =
      std::function<std::optional<std::string>(const Transaction&)>;

  explicit Mempool(ConflictKeyFn conflict_key = nullptr,
                   size_t capacity = 10000);

  /// Adds `tx` if its signature verifies and it is not already pooled.
  /// Checks run dedup -> signature -> capacity, so a re-gossiped duplicate
  /// reports AlreadyExists even when the pool is full (a full pool must not
  /// make peers mistake a benign duplicate for backpressure), and a
  /// bad-signature transaction reports PermissionDenied even when the pool
  /// is full (ResourceExhausted is retryable backpressure to ReliableChannel,
  /// which would keep retransmitting garbage that can never be accepted).
  Status Add(Transaction tx);

  /// Attaches counters (mempool.adds, mempool.reject.<reason>) and the
  /// shared occupancy gauge (mempool.occupancy, aggregated across pools via
  /// deltas). The registry must outlive the mempool; nullptr detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

  bool Contains(const crypto::Hash256& id) const;
  size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Selects up to `max_count` transactions for a block via a deterministic
  /// conflict-partitioning pass: transactions are walked in canonical order
  /// (arrival slots, per-sender nonce order restored) and partitioned into
  /// the current batch vs. deferred-to-a-later-block. A transaction defers
  /// when its conflict key is already claimed by the batch (the paper's
  /// one-update-per-shared-table-per-block rule) or the batch is full;
  /// everything else — updates to DISTINCT tables — batches into one block.
  /// Deferred transactions stay pooled until RemoveIncluded() confirms the
  /// batch; `deferred` (optional) receives how many were held back.
  std::vector<Transaction> BuildBlockCandidate(size_t max_count,
                                               size_t* deferred =
                                                   nullptr) const;

  /// Drops every pooled transaction whose id is in `included_ids` (hex).
  void RemoveIncluded(const std::set<std::string>& included_ids);

  /// Drops a specific transaction (e.g. one that became invalid).
  void Remove(const crypto::Hash256& id);

  /// Every pooled transaction in arrival order (for periodic re-gossip:
  /// on a lossy network, the one broadcast at submission time may never
  /// have reached the sealer whose turn it is).
  std::vector<Transaction> PendingTransactions() const {
    return std::vector<Transaction>(queue_.begin(), queue_.end());
  }

 private:
  ConflictKeyFn conflict_key_;
  size_t capacity_;
  std::deque<Transaction> queue_;
  std::set<std::string> ids_;

  metrics::Counter* adds_ = nullptr;
  metrics::Counter* reject_duplicate_ = nullptr;
  metrics::Counter* reject_full_ = nullptr;
  metrics::Counter* reject_bad_signature_ = nullptr;
  metrics::Gauge* occupancy_ = nullptr;
};

}  // namespace medsync::chain

#endif  // MEDSYNC_CHAIN_MEMPOOL_H_
