#include "chain/transaction.h"

#include "common/strings.h"

namespace medsync::chain {

namespace {
/// Canonical pre-image for signing: a JSON object with sorted keys, so the
/// digest is stable across serialization round trips.
Json UnsignedJson(const Transaction& tx) {
  Json out = Json::MakeObject();
  out.Set("from", tx.from.ToHex());
  out.Set("to", tx.to.ToHex());
  out.Set("nonce", tx.nonce);
  out.Set("method", tx.method);
  out.Set("params", tx.params);
  out.Set("timestamp", tx.timestamp);
  return out;
}
}  // namespace

crypto::Hash256 Transaction::Digest() const {
  return crypto::Sha256::Hash(UnsignedJson(*this).Dump());
}

void Transaction::Sign(const crypto::KeyPair& key) {
  signature = key.Sign(Digest().ToHex());
}

bool Transaction::VerifySignature() const {
  if (crypto::Address::FromPublicKey(signature.pub_hint) != from) {
    return false;
  }
  return crypto::KeyPair::Verify(signature.pub_hint, Digest().ToHex(),
                                 signature);
}

Json Transaction::ToJson() const {
  Json out = UnsignedJson(*this);
  Json sig = Json::MakeObject();
  sig.Set("mac", signature.mac.ToHex());
  sig.Set("pub", signature.pub_hint.ToHex());
  out.Set("signature", std::move(sig));
  return out;
}

Result<Transaction> Transaction::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("transaction JSON must be an object");
  }
  Transaction tx;
  bool ok = false;
  MEDSYNC_ASSIGN_OR_RETURN(std::string from_hex, json.GetString("from"));
  tx.from = crypto::Address::FromHex(from_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad 'from' address");
  MEDSYNC_ASSIGN_OR_RETURN(std::string to_hex, json.GetString("to"));
  tx.to = crypto::Address::FromHex(to_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad 'to' address");
  MEDSYNC_ASSIGN_OR_RETURN(int64_t nonce, json.GetInt("nonce"));
  tx.nonce = static_cast<uint64_t>(nonce);
  MEDSYNC_ASSIGN_OR_RETURN(tx.method, json.GetString("method"));
  tx.params = json.At("params");
  MEDSYNC_ASSIGN_OR_RETURN(tx.timestamp, json.GetInt("timestamp"));

  const Json& sig = json.At("signature");
  MEDSYNC_ASSIGN_OR_RETURN(std::string mac_hex, sig.GetString("mac"));
  tx.signature.mac = crypto::Hash256::FromHex(mac_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad signature mac");
  MEDSYNC_ASSIGN_OR_RETURN(std::string pub_hex, sig.GetString("pub"));
  tx.signature.pub_hint = crypto::Hash256::FromHex(pub_hex, &ok);
  if (!ok) return Status::InvalidArgument("bad signature pub hint");
  return tx;
}

}  // namespace medsync::chain
