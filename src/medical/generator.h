#ifndef MEDSYNC_MEDICAL_GENERATOR_H_
#define MEDSYNC_MEDICAL_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "relational/table.h"

namespace medsync::medical {

/// Synthetic medical-record generator.
///
/// Substitution note (DESIGN.md): the paper defers experiments on real
/// patient data to future work and says de-identification would be applied
/// first. This generator produces schema-identical records at any scale
/// from a fixed medication catalog, so every benchmark sweeps the same
/// shape of data a hospital table would have, with zero privacy risk.
struct GeneratorConfig {
  uint64_t seed = 42;
  size_t record_count = 100;
  /// First patient id; ids are dense from here.
  int64_t first_patient_id = 1000;
};

/// One catalog medication with its pharmacological descriptions. Each
/// medication has a UNIQUE name, mechanism, and mode, so the researcher
/// view (keyed by medication name, as in Fig. 1's D2) stays key-functional
/// on generated data.
struct Medication {
  std::string name;
  std::string mechanism_of_action;
  std::string mode_of_action;
  std::vector<std::string> dosages;
};

/// The built-in medication catalog (a few dozen entries).
const std::vector<Medication>& MedicationCatalog();

/// Generates `config.record_count` full medical records (Fig. 1 schema).
relational::Table GenerateFullRecords(const GeneratorConfig& config);

/// Generates a plausible free-text clinical note.
std::string GenerateClinicalNote(Rng* rng);

/// A random city name from the built-in list (paper's a3 uses Sapporo,
/// Osaka, ...).
std::string RandomCity(Rng* rng);

}  // namespace medsync::medical

#endif  // MEDSYNC_MEDICAL_GENERATOR_H_
