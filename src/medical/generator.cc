#include "medical/generator.h"

#include <cassert>

#include "common/strings.h"
#include "medical/records.h"

namespace medsync::medical {

using relational::Row;
using relational::Table;
using relational::Value;

const std::vector<Medication>& MedicationCatalog() {
  static const std::vector<Medication>* kCatalog = new std::vector<Medication>{
      {"Ibuprofen", "non-selective COX-1/COX-2 inhibition",
       "reduces prostaglandin synthesis",
       {"one tablet every 4h", "200 mg every 6h", "400 mg every 8h"}},
      {"Wellbutrin", "norepinephrine-dopamine reuptake inhibition",
       "increases synaptic catecholamine levels",
       {"100 mg twice daily", "150 mg once daily"}},
      {"Metformin", "AMPK activation, hepatic gluconeogenesis suppression",
       "lowers hepatic glucose output",
       {"500 mg twice daily", "850 mg once daily", "1000 mg twice daily"}},
      {"Lisinopril", "angiotensin-converting enzyme inhibition",
       "dilates blood vessels",
       {"10 mg once daily", "20 mg once daily"}},
      {"Atorvastatin", "HMG-CoA reductase inhibition",
       "reduces hepatic cholesterol synthesis",
       {"10 mg at bedtime", "20 mg at bedtime", "40 mg at bedtime"}},
      {"Levothyroxine", "thyroid hormone receptor agonism",
       "restores metabolic hormone levels",
       {"50 mcg each morning", "75 mcg each morning"}},
      {"Amlodipine", "L-type calcium channel blockade",
       "relaxes vascular smooth muscle",
       {"5 mg once daily", "10 mg once daily"}},
      {"Omeprazole", "gastric H+/K+ ATPase inhibition",
       "suppresses gastric acid secretion",
       {"20 mg before breakfast", "40 mg before breakfast"}},
      {"Sertraline", "selective serotonin reuptake inhibition",
       "raises synaptic serotonin",
       {"50 mg once daily", "100 mg once daily"}},
      {"Albuterol", "beta-2 adrenergic receptor agonism",
       "relaxes bronchial smooth muscle",
       {"two puffs every 4-6h", "one puff every 4h"}},
      {"Gabapentin", "alpha2delta calcium channel subunit binding",
       "dampens excitatory neurotransmission",
       {"300 mg three times daily", "600 mg three times daily"}},
      {"Hydrochlorothiazide", "distal tubule Na-Cl cotransporter inhibition",
       "increases sodium excretion",
       {"12.5 mg once daily", "25 mg once daily"}},
      {"Losartan", "angiotensin II receptor antagonism",
       "prevents vasoconstriction",
       {"50 mg once daily", "100 mg once daily"}},
      {"Azithromycin", "bacterial 50S ribosomal subunit binding",
       "halts bacterial protein synthesis",
       {"500 mg day one then 250 mg", "250 mg once daily"}},
      {"Amoxicillin", "bacterial cell wall transpeptidase inhibition",
       "lyses growing bacteria",
       {"500 mg every 8h", "875 mg every 12h"}},
      {"Prednisone", "glucocorticoid receptor agonism",
       "suppresses inflammatory gene expression",
       {"5 mg each morning", "10 mg each morning", "20 mg taper"}},
      {"Insulin glargine", "insulin receptor agonism, prolonged absorption",
       "enables cellular glucose uptake",
       {"10 units at bedtime", "20 units at bedtime"}},
      {"Warfarin", "vitamin K epoxide reductase inhibition",
       "blocks clotting factor synthesis",
       {"5 mg once daily", "2.5 mg once daily"}},
      {"Furosemide", "loop of Henle Na-K-2Cl cotransporter inhibition",
       "produces rapid diuresis",
       {"20 mg each morning", "40 mg each morning"}},
      {"Pantoprazole", "irreversible proton pump inhibition",
       "long-lasting acid suppression",
       {"40 mg once daily", "20 mg once daily"}},
      {"Citalopram", "selective serotonin reuptake inhibition",
       "raises synaptic serotonin",
       {"20 mg once daily", "40 mg once daily"}},
      {"Tramadol", "mu-opioid agonism with monoamine reuptake inhibition",
       "raises pain threshold",
       {"50 mg every 6h as needed", "100 mg every 8h"}},
      {"Clopidogrel", "P2Y12 ADP receptor blockade",
       "prevents platelet aggregation",
       {"75 mg once daily"}},
      {"Montelukast", "cysteinyl leukotriene receptor antagonism",
       "reduces airway inflammation",
       {"10 mg at bedtime"}},
      {"Duloxetine", "serotonin-norepinephrine reuptake inhibition",
       "modulates descending pain pathways",
       {"30 mg once daily", "60 mg once daily"}},
      {"Rosuvastatin", "HMG-CoA reductase inhibition",
       "reduces LDL cholesterol",
       {"5 mg at bedtime", "10 mg at bedtime"}},
      {"Escitalopram", "selective serotonin reuptake inhibition",
       "raises synaptic serotonin selectively",
       {"10 mg once daily", "20 mg once daily"}},
      {"Meloxicam", "preferential COX-2 inhibition",
       "reduces inflammatory prostaglandins",
       {"7.5 mg once daily", "15 mg once daily"}},
      {"Venlafaxine", "serotonin-norepinephrine reuptake inhibition",
       "dose-dependent dual reuptake blockade",
       {"75 mg once daily", "150 mg once daily"}},
      {"Doxycycline", "bacterial 30S ribosomal subunit binding",
       "bacteriostatic protein synthesis block",
       {"100 mg twice daily"}},
  };
  return *kCatalog;
}

namespace {
const std::vector<std::string>& Cities() {
  static const std::vector<std::string>* kCities = new std::vector<std::string>{
      "Sapporo",  "Osaka",   "Kyoto",    "Tokyo",    "Nagoya",
      "Fukuoka",  "Sendai",  "Hiroshima", "Yokohama", "Kobe",
      "Kanazawa", "Niigata", "Okayama",  "Kumamoto", "Matsuyama",
  };
  return *kCities;
}

const std::vector<std::string>& Complaints() {
  static const std::vector<std::string>* kComplaints =
      new std::vector<std::string>{
          "intermittent headache",  "lower back pain",
          "elevated blood pressure", "seasonal allergies",
          "persistent cough",        "joint stiffness",
          "fatigue and dizziness",   "mild fever",
          "chest tightness",         "abdominal discomfort",
      };
  return *kComplaints;
}

const std::vector<std::string>& Findings() {
  static const std::vector<std::string>* kFindings =
      new std::vector<std::string>{
          "vitals within normal limits", "BP 142/90",
          "temperature 37.8C",           "clear lung sounds",
          "mild tenderness on palpation", "no acute distress",
          "HR 88 regular",               "O2 saturation 97%",
      };
  return *kFindings;
}
}  // namespace

std::string RandomCity(Rng* rng) {
  return Cities()[rng->NextIndex(Cities().size())];
}

std::string GenerateClinicalNote(Rng* rng) {
  return StrCat("Presents with ",
                Complaints()[rng->NextIndex(Complaints().size())], "; ",
                Findings()[rng->NextIndex(Findings().size())],
                "; follow-up in ", rng->NextInRange(1, 8), " weeks.");
}

Table GenerateFullRecords(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const std::vector<Medication>& catalog = MedicationCatalog();
  Table table(FullRecordSchema());
  for (size_t i = 0; i < config.record_count; ++i) {
    const Medication& med = catalog[rng.NextIndex(catalog.size())];
    Row row{
        Value::Int(config.first_patient_id + static_cast<int64_t>(i)),
        Value::String(med.name),
        Value::String(GenerateClinicalNote(&rng)),
        Value::String(RandomCity(&rng)),
        Value::String(med.dosages[rng.NextIndex(med.dosages.size())]),
        Value::String(med.mechanism_of_action),
        Value::String(med.mode_of_action),
    };
    Status inserted = table.Insert(std::move(row));
    assert(inserted.ok());
    (void)inserted;
  }
  return table;
}

}  // namespace medsync::medical
