#ifndef MEDSYNC_MEDICAL_RECORDS_H_
#define MEDSYNC_MEDICAL_RECORDS_H_

#include <string>

#include "relational/table.h"

namespace medsync::medical {

/// Attribute names of the paper's Fig. 1 full medical record. The paper
/// labels them a0..a6; we keep those labels with readable suffixes.
inline constexpr char kPatientId[] = "a0_patient_id";
inline constexpr char kMedicationName[] = "a1_medication_name";
inline constexpr char kClinicalData[] = "a2_clinical_data";
inline constexpr char kAddress[] = "a3_address";
inline constexpr char kDosage[] = "a4_dosage";
inline constexpr char kMechanismOfAction[] = "a5_mechanism_of_action";
inline constexpr char kModeOfAction[] = "a6_mode_of_action";

/// Schema of the "Full medical records" table of Fig. 1: a0..a6, keyed by
/// patient id.
relational::Schema FullRecordSchema();

/// The exact "Full medical records" table of Fig. 1 (patients 188 and 189).
relational::Table MakeFig1FullRecords();

/// Schema subsets of the per-stakeholder tables of Fig. 1. D1 is the
/// patient's table (a0-a4), D2 the researcher's (a1,a5,a6; keyed by
/// medication name), D3 the doctor's (a0,a1,a2,a5,a4).
relational::Schema PatientSchema();     // D1
relational::Schema ResearcherSchema();  // D2
relational::Schema DoctorSchema();      // D3

}  // namespace medsync::medical

#endif  // MEDSYNC_MEDICAL_RECORDS_H_
