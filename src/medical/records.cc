#include "medical/records.h"

#include <cassert>

namespace medsync::medical {

using relational::AttributeDef;
using relational::DataType;
using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

namespace {
Schema MustCreate(std::vector<AttributeDef> attrs,
                  std::vector<std::string> key) {
  Result<Schema> schema = Schema::Create(std::move(attrs), std::move(key));
  assert(schema.ok());
  return std::move(schema).value();
}

AttributeDef StringAttr(const char* name) {
  return AttributeDef{name, DataType::kString, /*nullable=*/true};
}
}  // namespace

Schema FullRecordSchema() {
  return MustCreate(
      {
          AttributeDef{kPatientId, DataType::kInt, /*nullable=*/false},
          StringAttr(kMedicationName),
          StringAttr(kClinicalData),
          StringAttr(kAddress),
          StringAttr(kDosage),
          StringAttr(kMechanismOfAction),
          StringAttr(kModeOfAction),
      },
      {kPatientId});
}

Table MakeFig1FullRecords() {
  Table table(FullRecordSchema());
  Status s1 = table.Insert(Row{
      Value::Int(188), Value::String("Ibuprofen"), Value::String("CliD1"),
      Value::String("Sapporo"), Value::String("one tablet every 4h"),
      Value::String("MeA1"), Value::String("MoA1")});
  Status s2 = table.Insert(Row{
      Value::Int(189), Value::String("Wellbutrin"), Value::String("CliD2"),
      Value::String("Osaka"), Value::String("100 mg twice daily"),
      Value::String("MeA2"), Value::String("MoA2")});
  assert(s1.ok() && s2.ok());
  (void)s1;
  (void)s2;
  return table;
}

Schema PatientSchema() {
  return MustCreate(
      {
          AttributeDef{kPatientId, DataType::kInt, /*nullable=*/false},
          StringAttr(kMedicationName),
          StringAttr(kClinicalData),
          StringAttr(kAddress),
          StringAttr(kDosage),
      },
      {kPatientId});
}

Schema ResearcherSchema() {
  return MustCreate(
      {
          AttributeDef{kMedicationName, DataType::kString,
                       /*nullable=*/false},
          StringAttr(kMechanismOfAction),
          StringAttr(kModeOfAction),
      },
      {kMedicationName});
}

Schema DoctorSchema() {
  return MustCreate(
      {
          AttributeDef{kPatientId, DataType::kInt, /*nullable=*/false},
          StringAttr(kMedicationName),
          StringAttr(kClinicalData),
          StringAttr(kMechanismOfAction),
          StringAttr(kDosage),
      },
      {kPatientId});
}

}  // namespace medsync::medical
