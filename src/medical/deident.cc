#include "medical/deident.h"

#include <map>
#include <set>

#include "common/strings.h"

namespace medsync::medical {

using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

Result<Table> SuppressAttributes(const Table& input,
                                 const std::vector<std::string>& attributes) {
  const Schema& schema = input.schema();
  std::vector<size_t> indices;
  for (const std::string& name : attributes) {
    std::optional<size_t> idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("no attribute '", name, "'"));
    }
    if (schema.IsKeyAttribute(name)) {
      return Status::InvalidArgument(
          StrCat("cannot suppress key attribute '", name, "'"));
    }
    if (!schema.attributes()[*idx].nullable) {
      return Status::InvalidArgument(
          StrCat("cannot suppress non-nullable attribute '", name, "'"));
    }
    indices.push_back(*idx);
  }
  Table out(schema);
  for (const auto& [key, row] : input.scan()) {
    Row scrubbed = row;
    for (size_t idx : indices) scrubbed[idx] = Value::Null();
    MEDSYNC_RETURN_IF_ERROR(out.Insert(std::move(scrubbed)));
  }
  return out;
}

Result<Table> GeneralizeAttribute(
    const Table& input, const std::string& attribute,
    const std::function<Value(const Value&)>& generalize) {
  const Schema& schema = input.schema();
  std::optional<size_t> idx = schema.IndexOf(attribute);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("no attribute '", attribute, "'"));
  }
  if (schema.IsKeyAttribute(attribute)) {
    return Status::InvalidArgument(
        StrCat("cannot generalize key attribute '", attribute, "'"));
  }
  Table out(schema);
  for (const auto& [key, row] : input.scan()) {
    Row rewritten = row;
    if (!rewritten[*idx].is_null()) {
      rewritten[*idx] = generalize(rewritten[*idx]);
    }
    MEDSYNC_RETURN_IF_ERROR(out.Insert(std::move(rewritten)));
  }
  return out;
}

Value GeneralizeCityToRegion(const Value& city) {
  static const std::map<std::string, std::string>* kRegions =
      new std::map<std::string, std::string>{
          {"Sapporo", "Hokkaido"},   {"Sendai", "Tohoku"},
          {"Niigata", "Chubu"},      {"Kanazawa", "Chubu"},
          {"Nagoya", "Chubu"},       {"Tokyo", "Kanto"},
          {"Yokohama", "Kanto"},     {"Osaka", "Kansai"},
          {"Kyoto", "Kansai"},       {"Kobe", "Kansai"},
          {"Okayama", "Chugoku"},    {"Hiroshima", "Chugoku"},
          {"Matsuyama", "Shikoku"},  {"Fukuoka", "Kyushu"},
          {"Kumamoto", "Kyushu"},
      };
  if (city.type() != relational::DataType::kString) return city;
  auto it = kRegions->find(city.AsString());
  return Value::String(it == kRegions->end() ? "Japan" : it->second);
}

Result<size_t> SmallestEquivalenceClass(
    const Table& input, const std::vector<std::string>& quasi_identifiers) {
  const Schema& schema = input.schema();
  std::vector<size_t> indices;
  for (const std::string& name : quasi_identifiers) {
    std::optional<size_t> idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("no attribute '", name, "'"));
    }
    indices.push_back(*idx);
  }
  if (input.empty()) return static_cast<size_t>(0);
  std::map<std::vector<Value>, size_t> classes;
  for (const auto& [key, row] : input.scan()) {
    std::vector<Value> qi;
    qi.reserve(indices.size());
    for (size_t idx : indices) qi.push_back(row[idx]);
    ++classes[std::move(qi)];
  }
  size_t smallest = SIZE_MAX;
  for (const auto& [qi, count] : classes) {
    smallest = std::min(smallest, count);
  }
  return smallest;
}

Result<bool> IsKAnonymous(const Table& input,
                          const std::vector<std::string>& quasi_identifiers,
                          size_t k) {
  MEDSYNC_ASSIGN_OR_RETURN(size_t smallest,
                           SmallestEquivalenceClass(input, quasi_identifiers));
  if (input.empty()) return k == 0;
  return smallest >= k;
}

Result<size_t> SmallestSensitiveDiversity(
    const Table& input, const std::vector<std::string>& quasi_identifiers,
    const std::string& sensitive_attribute) {
  const Schema& schema = input.schema();
  std::vector<size_t> qi_indices;
  for (const std::string& name : quasi_identifiers) {
    std::optional<size_t> idx = schema.IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("no attribute '", name, "'"));
    }
    qi_indices.push_back(*idx);
  }
  std::optional<size_t> sensitive_idx = schema.IndexOf(sensitive_attribute);
  if (!sensitive_idx.has_value()) {
    return Status::NotFound(
        StrCat("no attribute '", sensitive_attribute, "'"));
  }
  if (input.empty()) return static_cast<size_t>(0);

  std::map<std::vector<Value>, std::set<Value>> classes;
  for (const auto& [key, row] : input.scan()) {
    std::vector<Value> qi;
    qi.reserve(qi_indices.size());
    for (size_t idx : qi_indices) qi.push_back(row[idx]);
    classes[std::move(qi)].insert(row[*sensitive_idx]);
  }
  size_t smallest = SIZE_MAX;
  for (const auto& [qi, sensitive_values] : classes) {
    smallest = std::min(smallest, sensitive_values.size());
  }
  return smallest;
}

Result<bool> IsLDiverse(const Table& input,
                        const std::vector<std::string>& quasi_identifiers,
                        const std::string& sensitive_attribute, size_t l) {
  MEDSYNC_ASSIGN_OR_RETURN(
      size_t smallest,
      SmallestSensitiveDiversity(input, quasi_identifiers,
                                 sensitive_attribute));
  if (input.empty()) return l == 0;
  return smallest >= l;
}

}  // namespace medsync::medical
