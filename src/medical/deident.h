#ifndef MEDSYNC_MEDICAL_DEIDENT_H_
#define MEDSYNC_MEDICAL_DEIDENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace medsync::medical {

/// De-identification operators. The paper's conclusion commits to "use some
/// de-identification technology to protect patient data from being
/// exposed" before experimenting on real records; these operators implement
/// that step so research-facing views can be scrubbed before sharing.

/// Replaces the values of `attributes` with NULL (suppression). Key
/// attributes cannot be suppressed (rows would collide); that is an error.
Result<relational::Table> SuppressAttributes(
    const relational::Table& input,
    const std::vector<std::string>& attributes);

/// Rewrites one attribute through `generalize` (e.g. city -> region,
/// exact dosage -> dosage band). NULL cells pass through unchanged.
Result<relational::Table> GeneralizeAttribute(
    const relational::Table& input, const std::string& attribute,
    const std::function<relational::Value(const relational::Value&)>&
        generalize);

/// Built-in generalization: maps a city (the Fig. 1 a3 values) to its
/// region ("Sapporo" -> "Hokkaido", unknown cities -> "Japan").
relational::Value GeneralizeCityToRegion(const relational::Value& city);

/// Size of the smallest equivalence class over `quasi_identifiers`
/// (0 for an empty table). A table is k-anonymous iff this is >= k.
Result<size_t> SmallestEquivalenceClass(
    const relational::Table& input,
    const std::vector<std::string>& quasi_identifiers);

/// True if every combination of quasi-identifier values appears in at
/// least `k` rows.
Result<bool> IsKAnonymous(const relational::Table& input,
                          const std::vector<std::string>& quasi_identifiers,
                          size_t k);

/// The smallest number of DISTINCT `sensitive_attribute` values within any
/// quasi-identifier equivalence class (0 for an empty table). A table is
/// l-diverse iff this is >= l — k-anonymity alone does not stop an
/// attacker when everyone in a class shares the same diagnosis.
Result<size_t> SmallestSensitiveDiversity(
    const relational::Table& input,
    const std::vector<std::string>& quasi_identifiers,
    const std::string& sensitive_attribute);

/// True if every quasi-identifier class contains at least `l` distinct
/// values of `sensitive_attribute`.
Result<bool> IsLDiverse(const relational::Table& input,
                        const std::vector<std::string>& quasi_identifiers,
                        const std::string& sensitive_attribute, size_t l);

}  // namespace medsync::medical

#endif  // MEDSYNC_MEDICAL_DEIDENT_H_
