#include "runtime/daemon.h"

#include "chain/blockchain.h"
#include "chain/sealer.h"
#include "common/strings.h"
#include "contracts/metadata_contract.h"

namespace medsync::runtime {

std::string NodeDaemon::NodeIdFor(size_t index) {
  return StrCat("chain-node-", index);
}

std::vector<crypto::Address> NodeDaemon::Authorities(size_t count) {
  std::vector<crypto::Address> authorities;
  authorities.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    authorities.push_back(
        crypto::KeyPair::FromSeed(StrCat("authority-", i)).address());
  }
  return authorities;
}

NodeDaemon::NodeDaemon(const NodeDaemonOptions& options,
                       net::Scheduler* scheduler, net::Network* network) {
  auto signer = std::make_shared<crypto::KeyPair>(
      crypto::KeyPair::FromSeed(StrCat("authority-", options.node_index)));
  // Height-rotation PoA: only the rightful authority's seal validates at
  // each height, so independently started processes with unsynchronized
  // seal-tick phases cannot fork the chain — a late tick just means the
  // rightful node seals on its next one.
  auto sealer = std::make_shared<chain::PoaSealer>(
      Authorities(options.authority_count), std::move(signer));

  auto host = std::make_unique<contracts::ContractHost>();
  host->RegisterType("metadata", contracts::MetadataContract::Create);

  NodeConfig config;
  config.id = NodeIdFor(options.node_index);
  config.block_interval = options.block_interval;
  config.max_block_txs = options.max_block_txs;
  config.sealing_enabled = true;
  config.metrics = options.metrics;

  node_ = std::make_unique<ChainNode>(
      config, scheduler, network, std::move(sealer),
      chain::Blockchain::MakeGenesis(options.genesis_timestamp),
      contracts::SharedDataConflictKey, std::move(host));
}

void NodeDaemon::Start() { node_->Start(); }

}  // namespace medsync::runtime
