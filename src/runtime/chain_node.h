#ifndef MEDSYNC_RUNTIME_CHAIN_NODE_H_
#define MEDSYNC_RUNTIME_CHAIN_NODE_H_

#include <functional>
#include <map>
#include <optional>
#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "chain/lanes.h"
#include "chain/mempool.h"
#include "chain/sealer.h"
#include "contracts/host.h"
#include "net/network.h"
#include "net/scheduler.h"
#include "runtime/block_store.h"

namespace medsync::threading {
class ThreadPool;
}  // namespace medsync::threading

namespace medsync::runtime {

struct NodeConfig {
  net::NodeId id;
  /// Target block production interval; the paper discusses Ethereum's ~12 s
  /// (Section IV-1) and bench_sec4_throughput sweeps this.
  Micros block_interval = 12 * kMicrosPerSecond;
  size_t max_block_txs = 100;
  /// Whether this node produces blocks (a miner/authority).
  bool sealing_enabled = false;
  /// Whether to seal blocks with an empty transaction list.
  bool seal_empty_blocks = false;
  /// Number of independent chain lanes (shards). 1 = the classic single
  /// chain. With N > 1 the node keeps N chains + N mempool partitions and
  /// seals all lanes each tick (in parallel when `pool` is set); `lane_key`
  /// routes transactions to lanes. Every node in a network must agree on
  /// lane_count and lane_key, and the sealer should rotate by time slot
  /// (PoaSealer slot_interval) so all lanes share one authority per tick.
  size_t lane_count = 1;
  /// Lane-affinity key (see chain/lanes.h). Transactions whose keys are
  /// equal seal on the same lane; null routes everything to lane 0.
  chain::LaneKeyFn lane_key = nullptr;
  /// Optional worker pool (must outlive the node; may be shared between
  /// nodes). Parallelizes block validation, the Merkle commitment of
  /// sealed candidates, and per-lane sealing; null keeps the node fully
  /// serial. Every parallel path is deterministic, so pooled and serial
  /// nodes build byte-identical chains.
  threading::ThreadPool* pool = nullptr;
  /// Optional metrics registry (must outlive the node; typically shared
  /// across the whole scenario). Wires the node's chain and mempool
  /// counters plus node.seal.* and chain.lane.* accounting.
  metrics::MetricsRegistry* metrics = nullptr;
};

/// A full blockchain node on the simulated network: replicated ledger (one
/// chain per lane), per-lane mempools, contract execution, transaction and
/// block gossip, and orphan catch-up. Application peers (doctor/patient/
/// researcher) talk to the system through their trusted node's client API —
/// SubmitTransaction, Query, and the event subscription — exactly the "via
/// a trusted node connected to blockchain" interaction of the paper's
/// Section III-E.
///
/// Lane semantics: lanes are fully independent chains sealed from disjoint
/// mempool partitions. Ordering is guaranteed WITHIN a lane only; the lane
/// key must therefore map everything whose relative order matters (all
/// operations on one shared table) to one lane. Cross-lane dependencies
/// (contract deploy before table traffic) need an out-of-band barrier —
/// scenario bootstrap settles the deploy before opening table traffic.
class ChainNode : public net::Endpoint {
 public:
  using EventCallback = std::function<void(uint64_t block_height,
                                           const contracts::Event& event)>;
  using ReceiptCallback = std::function<void(const contracts::Receipt&)>;

  /// `sealer` validates (and, on sealing nodes, produces) seals; `genesis`
  /// must be identical across all nodes (per-lane genesis blocks are
  /// derived from it by stamping the lane id); `conflict_key` implements
  /// the one-update-per-shared-table-per-block rule; `host` is this node's
  /// contract execution engine (with all types pre-registered).
  ChainNode(NodeConfig config, net::Scheduler* scheduler,
            net::Network* network, std::shared_ptr<const chain::Sealer> sealer,
            chain::Block genesis, chain::Blockchain::ConflictKeyFn conflict_key,
            std::unique_ptr<contracts::ContractHost> host);

  /// Invalidates the liveness token so seal-timer events still queued in
  /// the scheduler become no-ops instead of firing on a dangling node
  /// (restart tests destroy nodes while their shared scheduler keeps
  /// running).
  ~ChainNode();

  /// Attaches to the network and, on sealing nodes, starts the seal timer.
  void Start();

  /// Makes the node's ledger durable: every accepted block is appended to
  /// `path`, and blocks already stored there are replayed into the chain
  /// (and executed) right away — each into the lane its header names. Call
  /// before Start(); a node restarted on the same file resumes from its
  /// recovered heads and catches the rest up over the network. Genesis
  /// must match the stored chain.
  Status EnablePersistence(const std::string& path);

  // -- Client API -----------------------------------------------------------

  /// Accepts a signed transaction into its lane's mempool and gossips it.
  Status SubmitTransaction(chain::Transaction tx);

  /// Read-only contract call against this node's executed state.
  Result<Json> Query(const crypto::Address& contract,
                     const std::string& method, const Json& params,
                     const crypto::Address& caller);

  /// Receipt of `tx_id_hex` if the transaction has been executed here.
  const contracts::Receipt* FindReceipt(const std::string& tx_id_hex) const;

  /// `callback` fires for every contract event as blocks execute locally.
  void SubscribeEvents(EventCallback callback);
  void SubscribeReceipts(ReceiptCallback callback);

  /// Lane 0's chain — the only lane in the classic single-chain setup.
  const chain::Blockchain& blockchain() const { return lanes_[0]->chain; }
  const chain::Blockchain& blockchain(size_t lane) const {
    return lanes_[lane]->chain;
  }
  size_t lane_count() const { return lanes_.size(); }
  contracts::ContractHost& host() { return *host_; }
  const contracts::ContractHost& host() const { return *host_; }
  /// Lane 0's mempool partition.
  const chain::Mempool& mempool() const { return lanes_[0]->mempool; }
  const chain::Mempool& mempool(size_t lane) const {
    return lanes_[lane]->mempool;
  }
  /// Pooled transactions across every lane partition.
  size_t mempool_total_size() const;
  /// True when every lane's mempool partition is empty.
  bool mempools_empty() const;
  const NodeConfig& config() const { return config_; }
  /// Blocks sealed by this node across all lanes.
  uint64_t blocks_sealed() const { return blocks_sealed_; }

  /// Snapshot of the attached registry ({} when none was configured).
  Json MetricsSnapshot() const;

  // -- Network --------------------------------------------------------------

  void OnMessage(const net::Message& message) override;

 private:
  /// One shard: an independent chain with its own mempool partition and
  /// executed-prefix bookkeeping. Lanes share the sealer, host, orphan
  /// buffer, and block store.
  struct Lane {
    Lane(chain::Block genesis, const chain::Sealer* sealer,
         chain::Blockchain::ConflictKeyFn conflict_key,
         threading::ThreadPool* pool, chain::Mempool::ConflictKeyFn pool_key)
        : chain(std::move(genesis), sealer, std::move(conflict_key), pool),
          mempool(std::move(pool_key)) {}
    chain::Blockchain chain;
    chain::Mempool mempool;
    /// Hashes (hex) of this lane's canonical prefix already executed.
    std::vector<std::string> executed_hashes;
  };

  /// Per-lane candidate built by the parallel phase of a seal tick.
  struct SealOutcome {
    bool sealed = false;
    chain::Block block;
    size_t deferred = 0;  // conflict-partition holdbacks this tick
  };

  void SealTick();
  /// Parallel phase: candidate selection + Merkle + seal per lane (disjoint
  /// state, deterministic). Serial phase: lane-ordered insert/evict/
  /// broadcast, then one execution advance.
  void TrySealLanes();
  SealOutcome BuildLaneCandidate(Lane& lane);

  /// Executes newly canonical blocks lane by lane (lane order); on a reorg
  /// in ANY lane, resets the host and replays every lane's canonical chain.
  /// Receipt/event callbacks fire AFTER all lanes execute, ordered by
  /// (block timestamp, tx id) — a pure function of content, so subscriber
  /// message order does not depend on how many lanes the tick's
  /// transactions were spread over.
  void AdvanceExecution();
  /// Coalesces block-arrival executions: all blocks delivered at one
  /// simulated instant (a multi-lane tick arrives as several messages)
  /// execute as ONE AdvanceExecution batch, scheduled behind the
  /// already-queued same-instant deliveries. Without this, per-arrival
  /// execution would dispatch notifications in lane-arrival order and
  /// subscriber behaviour would depend on the lane count.
  void ScheduleExecution();

  void HandleTransactionMessage(const net::Message& message);
  void HandleBlockPayload(const Json& payload, const net::NodeId& from);
  void HandleBlockRequest(const net::Message& message);
  void HandleHeadAnnounce(const net::Message& message);
  void MaybeRequestBlock(uint32_t lane, const std::string& hash_hex,
                         uint64_t height, const net::NodeId& from);

  Status AcceptBlock(chain::Block block, const net::NodeId& from);
  void AdoptOrphansOf(const std::string& parent_hash_hex);

  /// Routes to the lane named in the header; AddBlock plus block-store
  /// append on success.
  Status AddBlockPersist(chain::Block block);

  NodeConfig config_;
  net::Scheduler* scheduler_;
  net::Network* network_;
  /// Liveness token for timer callbacks queued in the scheduler (same
  /// idiom as Peer::alive_): captured by SealTick reschedules, flipped
  /// false in the destructor.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// True while a coalesced execution batch is queued in the scheduler.
  bool execution_scheduled_ = false;
  std::shared_ptr<const chain::Sealer> sealer_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  chain::LaneAssignFn lane_assign_;
  std::unique_ptr<contracts::ContractHost> host_;

  /// Orphan blocks waiting for their parent, keyed by parent hash hex.
  /// Shared across lanes — block hashes are unique and AddBlockPersist
  /// routes each adopted block to its own lane.
  std::map<std::string, std::vector<chain::Block>> orphans_;

  /// Durable block log (nullopt = in-memory node). Shared by all lanes;
  /// recovery routes stored blocks by their lane stamp.
  std::optional<BlockStore> block_store_;

  std::vector<EventCallback> event_callbacks_;
  std::vector<ReceiptCallback> receipt_callbacks_;
  uint64_t blocks_sealed_ = 0;
  bool started_ = false;

  metrics::Counter* seal_attempts_ = nullptr;
  metrics::Counter* seal_sealed_ = nullptr;
  metrics::Counter* seal_skipped_ = nullptr;
  metrics::Counter* lane_sealed_ = nullptr;
  metrics::Counter* lane_deferred_ = nullptr;
  metrics::Histogram* lane_batch_txs_ = nullptr;
};

}  // namespace medsync::runtime

#endif  // MEDSYNC_RUNTIME_CHAIN_NODE_H_
