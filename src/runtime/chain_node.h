#ifndef MEDSYNC_RUNTIME_CHAIN_NODE_H_
#define MEDSYNC_RUNTIME_CHAIN_NODE_H_

#include <functional>
#include <map>
#include <optional>
#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "chain/mempool.h"
#include "chain/sealer.h"
#include "contracts/host.h"
#include "net/network.h"
#include "net/simulator.h"
#include "runtime/block_store.h"

namespace medsync::threading {
class ThreadPool;
}  // namespace medsync::threading

namespace medsync::runtime {

struct NodeConfig {
  net::NodeId id;
  /// Target block production interval; the paper discusses Ethereum's ~12 s
  /// (Section IV-1) and bench_sec4_throughput sweeps this.
  Micros block_interval = 12 * kMicrosPerSecond;
  size_t max_block_txs = 100;
  /// Whether this node produces blocks (a miner/authority).
  bool sealing_enabled = false;
  /// Whether to seal blocks with an empty transaction list.
  bool seal_empty_blocks = false;
  /// Optional worker pool (must outlive the node; may be shared between
  /// nodes). Parallelizes block validation and the Merkle commitment of
  /// sealed candidates; null keeps the node fully serial. Every parallel
  /// path is deterministic, so pooled and serial nodes build byte-identical
  /// chains.
  threading::ThreadPool* pool = nullptr;
  /// Optional metrics registry (must outlive the node; typically shared
  /// across the whole scenario). Wires the node's chain and mempool
  /// counters plus node.seal.* accounting.
  metrics::MetricsRegistry* metrics = nullptr;
};

/// A full blockchain node on the simulated network: replicated ledger,
/// mempool, contract execution, transaction/block gossip, and orphan
/// catch-up. Application peers (doctor/patient/researcher) talk to the
/// system through their trusted node's client API — SubmitTransaction,
/// Query, and the event subscription — exactly the "via a trusted node
/// connected to blockchain" interaction of the paper's Section III-E.
class ChainNode : public net::Endpoint {
 public:
  using EventCallback = std::function<void(uint64_t block_height,
                                           const contracts::Event& event)>;
  using ReceiptCallback = std::function<void(const contracts::Receipt&)>;

  /// `sealer` validates (and, on sealing nodes, produces) seals; `genesis`
  /// must be identical across all nodes; `conflict_key` implements the
  /// one-update-per-shared-table-per-block rule; `host` is this node's
  /// contract execution engine (with all types pre-registered).
  ChainNode(NodeConfig config, net::Simulator* simulator,
            net::Network* network, std::shared_ptr<const chain::Sealer> sealer,
            chain::Block genesis, chain::Blockchain::ConflictKeyFn conflict_key,
            std::unique_ptr<contracts::ContractHost> host);

  /// Invalidates the liveness token so seal-timer events still queued in
  /// the simulator become no-ops instead of firing on a dangling node
  /// (restart tests destroy nodes while their shared simulator keeps
  /// running).
  ~ChainNode();

  /// Attaches to the network and, on sealing nodes, starts the seal timer.
  void Start();

  /// Makes the node's ledger durable: every accepted block is appended to
  /// `path`, and blocks already stored there are replayed into the chain
  /// (and executed) right away. Call before Start(); a node restarted on
  /// the same file resumes from its recovered head and catches the rest up
  /// over the network. Genesis must match the stored chain.
  Status EnablePersistence(const std::string& path);

  // -- Client API -----------------------------------------------------------

  /// Accepts a signed transaction into the mempool and gossips it.
  Status SubmitTransaction(chain::Transaction tx);

  /// Read-only contract call against this node's executed state.
  Result<Json> Query(const crypto::Address& contract,
                     const std::string& method, const Json& params,
                     const crypto::Address& caller);

  /// Receipt of `tx_id_hex` if the transaction has been executed here.
  const contracts::Receipt* FindReceipt(const std::string& tx_id_hex) const;

  /// `callback` fires for every contract event as blocks execute locally.
  void SubscribeEvents(EventCallback callback);
  void SubscribeReceipts(ReceiptCallback callback);

  const chain::Blockchain& blockchain() const { return chain_; }
  contracts::ContractHost& host() { return *host_; }
  const contracts::ContractHost& host() const { return *host_; }
  const chain::Mempool& mempool() const { return mempool_; }
  const NodeConfig& config() const { return config_; }
  uint64_t blocks_sealed() const { return blocks_sealed_; }

  /// Snapshot of the attached registry ({} when none was configured).
  Json MetricsSnapshot() const;

  // -- Network --------------------------------------------------------------

  void OnMessage(const net::Message& message) override;

 private:
  void SealTick();
  void TrySeal();

  /// Executes newly canonical blocks; on a reorg, resets the host and
  /// replays the whole canonical chain.
  void AdvanceExecution();

  void HandleTransactionMessage(const net::Message& message);
  void HandleBlockPayload(const Json& payload, const net::NodeId& from);
  void HandleBlockRequest(const net::Message& message);
  void HandleHeadAnnounce(const net::Message& message);

  Status AcceptBlock(chain::Block block, const net::NodeId& from);
  void AdoptOrphansOf(const std::string& parent_hash_hex);

  /// chain_.AddBlock plus block-store append on success.
  Status AddBlockPersist(chain::Block block);

  NodeConfig config_;
  net::Simulator* simulator_;
  net::Network* network_;
  /// Liveness token for timer callbacks queued in the simulator (same
  /// idiom as Peer::alive_): captured by SealTick reschedules, flipped
  /// false in the destructor.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::shared_ptr<const chain::Sealer> sealer_;
  chain::Blockchain chain_;
  chain::Mempool mempool_;
  std::unique_ptr<contracts::ContractHost> host_;

  /// Hashes (hex) of the canonical prefix already executed by host_.
  std::vector<std::string> executed_hashes_;

  /// Orphan blocks waiting for their parent, keyed by parent hash hex.
  std::map<std::string, std::vector<chain::Block>> orphans_;

  /// Durable block log (nullopt = in-memory node).
  std::optional<BlockStore> block_store_;

  std::vector<EventCallback> event_callbacks_;
  std::vector<ReceiptCallback> receipt_callbacks_;
  uint64_t blocks_sealed_ = 0;
  bool started_ = false;

  metrics::Counter* seal_attempts_ = nullptr;
  metrics::Counter* seal_sealed_ = nullptr;
  metrics::Counter* seal_skipped_ = nullptr;
};

}  // namespace medsync::runtime

#endif  // MEDSYNC_RUNTIME_CHAIN_NODE_H_
