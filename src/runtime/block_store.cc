#include "runtime/block_store.h"

#include "common/fault_injector.h"
#include "common/strings.h"

namespace medsync::runtime {

Result<BlockStore> BlockStore::Open(const std::string& path,
                                    std::vector<chain::Block>* recovered,
                                    Options options) {
  if (recovered) recovered->clear();
  std::vector<relational::WalRecord> records;
  MEDSYNC_ASSIGN_OR_RETURN(
      relational::Wal wal,
      relational::Wal::Open(
          path, &records,
          relational::Wal::Options{.sync_every_append =
                                       options.sync_every_append}));
  if (recovered) {
    for (const relational::WalRecord& record : records) {
      Result<chain::Block> block = chain::Block::FromJson(record.payload);
      if (!block.ok()) {
        // A decodable-but-invalid record means real corruption beyond a
        // torn tail (the CRC passed); refuse to run on it.
        return block.status().WithPrefix(
            StrCat("block store record ", record.lsn));
      }
      recovered->push_back(std::move(*block));
    }
  }
  BlockStore store(std::move(wal));
  store.blocks_written_ = records.size();
  return store;
}

Status BlockStore::Append(const chain::Block& block) {
  MEDSYNC_RETURN_IF_ERROR(CheckFaultPoint("blockstore.append.before_write"));
  MEDSYNC_RETURN_IF_ERROR(wal_.Append(block.ToJson()).status());
  ++blocks_written_;
  return Status::OK();
}

}  // namespace medsync::runtime
