#ifndef MEDSYNC_RUNTIME_BLOCK_STORE_H_
#define MEDSYNC_RUNTIME_BLOCK_STORE_H_

#include <string>
#include <vector>

#include "chain/block.h"
#include "relational/wal.h"

namespace medsync::runtime {

/// Durable block log for a chain node: every accepted block is appended to
/// a CRC-checked file (reusing the relational WAL machinery), in
/// acceptance order — which is parent-first by construction, so replaying
/// the log rebuilds the exact block tree. A node restarted on the same
/// directory recovers its chain, re-executes the canonical prefix, and
/// rejoins the network where it left off (see ChainNode persistence).
class BlockStore {
 public:
  struct Options {
    /// fdatasync every appended block. ON by default: acceptance implies
    /// durability — a node that told the network it holds a block must
    /// still hold it after a machine crash, or restart recovery serves a
    /// shorter chain than it already gossiped about.
    bool sync_every_append = true;
  };

  /// Opens (creating if needed) the log at `path` and decodes the stored
  /// blocks into `recovered` (in append order). A torn or corrupt tail is
  /// truncated, exactly like WAL recovery.
  static Result<BlockStore> Open(const std::string& path,
                                 std::vector<chain::Block>* recovered,
                                 Options options);
  static Result<BlockStore> Open(const std::string& path,
                                 std::vector<chain::Block>* recovered) {
    return Open(path, recovered, Options());
  }

  BlockStore(BlockStore&&) = default;
  BlockStore& operator=(BlockStore&&) = default;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Appends an accepted block.
  Status Append(const chain::Block& block);

  uint64_t blocks_written() const { return blocks_written_; }

  /// Durability accounting of the underlying log (appends/syncs/...).
  const relational::Wal::Stats& wal_stats() const { return wal_.stats(); }

 private:
  explicit BlockStore(relational::Wal wal) : wal_(std::move(wal)) {}

  relational::Wal wal_;
  uint64_t blocks_written_ = 0;
};

}  // namespace medsync::runtime

#endif  // MEDSYNC_RUNTIME_BLOCK_STORE_H_
