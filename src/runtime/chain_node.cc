#include "runtime/chain_node.h"

#include "common/logging.h"
#include "common/strings.h"

namespace medsync::runtime {

using chain::Block;
using chain::Transaction;

ChainNode::ChainNode(NodeConfig config, net::Simulator* simulator,
                     net::Network* network,
                     std::shared_ptr<const chain::Sealer> sealer,
                     Block genesis,
                     chain::Blockchain::ConflictKeyFn conflict_key,
                     std::unique_ptr<contracts::ContractHost> host)
    : config_(std::move(config)),
      simulator_(simulator),
      network_(network),
      sealer_(std::move(sealer)),
      chain_(std::move(genesis), sealer_.get(), conflict_key, config_.pool),
      mempool_(conflict_key),
      host_(std::move(host)) {
  executed_hashes_.push_back(chain_.genesis().header.Hash().ToHex());
  if (config_.metrics != nullptr) {
    chain_.set_metrics(config_.metrics);
    mempool_.set_metrics(config_.metrics);
    seal_attempts_ = config_.metrics->GetCounter("node.seal.attempts");
    seal_sealed_ = config_.metrics->GetCounter("node.seal.sealed");
    seal_skipped_ = config_.metrics->GetCounter("node.seal.skipped");
  }
}

ChainNode::~ChainNode() {
  *alive_ = false;
  // Same contract as Peer::~Peer: queued deliveries to this id become
  // dropped-as-detached instead of landing on freed memory.
  if (started_) network_->Detach(config_.id);
}

Json ChainNode::MetricsSnapshot() const {
  return config_.metrics != nullptr ? config_.metrics->Snapshot()
                                    : Json::MakeObject();
}

void ChainNode::Start() {
  if (started_) return;
  started_ = true;
  network_->Attach(config_.id, this);
  if (config_.sealing_enabled) {
    simulator_->Schedule(config_.block_interval, [this, alive = alive_] {
      if (!*alive) return;
      SealTick();
    });
  }
}

Status ChainNode::EnablePersistence(const std::string& path) {
  if (block_store_.has_value()) {
    return Status::FailedPrecondition("persistence already enabled");
  }
  std::vector<chain::Block> recovered;
  MEDSYNC_ASSIGN_OR_RETURN(BlockStore store, BlockStore::Open(path,
                                                              &recovered));
  for (chain::Block& block : recovered) {
    Status added = chain_.AddBlock(std::move(block));
    if (!added.ok() && !added.IsAlreadyExists()) {
      return added.WithPrefix("replaying stored blocks");
    }
  }
  block_store_ = std::move(store);
  if (!recovered.empty()) {
    MEDSYNC_LOG(kInfo, config_.id)
        << "recovered " << recovered.size() << " stored blocks, head "
        << chain_.head().header.height;
    AdvanceExecution();
  }
  return Status::OK();
}

Status ChainNode::AddBlockPersist(chain::Block block) {
  // Copy needed for the append; AddBlock consumes the block.
  chain::Block stored = block;
  MEDSYNC_RETURN_IF_ERROR(chain_.AddBlock(std::move(block)));
  if (block_store_.has_value()) {
    Status appended = block_store_->Append(stored);
    if (!appended.ok()) {
      MEDSYNC_LOG(kWarning, config_.id)
          << "block store append failed: " << appended;
    }
  }
  return Status::OK();
}

void ChainNode::SealTick() {
  TrySeal();
  // Head announcement keeps lagging replicas live: a peer that missed
  // blocks (partition, drops) learns the current head and chases the
  // missing ancestry via block_request. Without this, PoA round-robin can
  // deadlock — if it is the lagging authority's turn, nobody else may seal
  // and no new block would ever reach it.
  if (chain_.head().header.height > 0) {
    Json announce = Json::MakeObject();
    announce.Set("hash", chain_.head().header.Hash().ToHex());
    announce.Set("height", chain_.head().header.height);
    network_->Broadcast(config_.id, "head_announce", announce);
  }
  // Re-gossip pooled transactions: on a lossy network, the broadcast made
  // at submission time may never have reached the authority whose turn it
  // is, and a transaction stuck in one node's pool would stall the sender
  // forever. Receivers dedupe, so this is idempotent.
  for (const Transaction& tx : mempool_.PendingTransactions()) {
    network_->Broadcast(config_.id, "tx", tx.ToJson());
  }
  simulator_->Schedule(config_.block_interval, [this, alive = alive_] {
    if (!*alive) return;
    SealTick();
  });
}

void ChainNode::HandleHeadAnnounce(const net::Message& message) {
  auto hash_hex = message.payload.GetString("hash");
  auto height = message.payload.GetInt("height");
  if (!hash_hex.ok() || !height.ok()) return;
  if (static_cast<uint64_t>(*height) <= chain_.head().header.height) return;
  bool ok = false;
  crypto::Hash256 hash = crypto::Hash256::FromHex(*hash_hex, &ok);
  if (!ok || chain_.BlockByHash(hash).ok()) return;
  Json request = Json::MakeObject();
  request.Set("hash", *hash_hex);
  LogIfError(
      network_->Send(
          net::Message{config_.id, message.from, "block_request", request}),
      "chain", "head-announce block request");
}

void ChainNode::TrySeal() {
  std::vector<Transaction> txs =
      mempool_.BuildBlockCandidate(config_.max_block_txs);

  // Evict candidates that are already on the canonical chain. This can
  // happen after a reorg (the pool is not replayed) or when eviction raced
  // gossip; without the filter the sealed block would carry a duplicate
  // transaction, fail validation, and this authority's turn would stall
  // forever.
  std::set<std::string> stale;
  std::vector<Transaction> fresh;
  fresh.reserve(txs.size());
  for (Transaction& tx : txs) {
    if (chain_.FindTransaction(tx.Id(), nullptr, nullptr)) {
      stale.insert(tx.Id().ToHex());
    } else {
      fresh.push_back(std::move(tx));
    }
  }
  if (!stale.empty()) mempool_.RemoveIncluded(stale);
  txs = std::move(fresh);

  if (txs.empty() && !config_.seal_empty_blocks) return;

  Block block;
  block.header.height = chain_.head().header.height + 1;
  block.header.parent = chain_.head().header.Hash();
  block.header.timestamp =
      std::max(simulator_->Now(), chain_.head().header.timestamp);
  block.transactions = std::move(txs);
  block.header.merkle_root = block.ComputeMerkleRoot(config_.pool);

  metrics::Inc(seal_attempts_);
  Status sealed = sealer_->Seal(&block);
  if (!sealed.ok()) {
    // Not our turn (PoA round-robin) or no key — wait for the next tick.
    metrics::Inc(seal_skipped_);
    MEDSYNC_LOG(kDebug, config_.id) << "seal skipped: " << sealed;
    return;
  }

  Status added = AddBlockPersist(block);
  if (!added.ok()) {
    MEDSYNC_LOG(kWarning, config_.id)
        << "own sealed block rejected: " << added;
    return;
  }
  ++blocks_sealed_;
  metrics::Inc(seal_sealed_);
  MEDSYNC_LOG(kInfo, config_.id)
      << "sealed block " << block.header.height << " ("
      << block.transactions.size() << " txs)";

  std::set<std::string> included;
  for (const Transaction& tx : block.transactions) {
    included.insert(tx.Id().ToHex());
  }
  mempool_.RemoveIncluded(included);

  network_->Broadcast(config_.id, "block", block.ToJson());
  AdvanceExecution();
}

Status ChainNode::SubmitTransaction(Transaction tx) {
  Json payload = tx.ToJson();
  MEDSYNC_RETURN_IF_ERROR(mempool_.Add(std::move(tx)));
  network_->Broadcast(config_.id, "tx", payload);
  return Status::OK();
}

Result<Json> ChainNode::Query(const crypto::Address& contract,
                              const std::string& method, const Json& params,
                              const crypto::Address& caller) {
  return host_->StaticCall(contract, method, params, caller);
}

const contracts::Receipt* ChainNode::FindReceipt(
    const std::string& tx_id_hex) const {
  return host_->FindReceipt(tx_id_hex);
}

void ChainNode::SubscribeEvents(EventCallback callback) {
  event_callbacks_.push_back(std::move(callback));
}

void ChainNode::SubscribeReceipts(ReceiptCallback callback) {
  receipt_callbacks_.push_back(std::move(callback));
}

void ChainNode::OnMessage(const net::Message& message) {
  if (message.type == "tx") {
    HandleTransactionMessage(message);
  } else if (message.type == "block") {
    HandleBlockPayload(message.payload, message.from);
  } else if (message.type == "block_request") {
    HandleBlockRequest(message);
  } else if (message.type == "head_announce") {
    HandleHeadAnnounce(message);
  } else if (message.type == "block_response") {
    HandleBlockPayload(message.payload, message.from);
  } else {
    MEDSYNC_LOG(kDebug, config_.id)
        << "ignoring message type '" << message.type << "'";
  }
}

void ChainNode::HandleTransactionMessage(const net::Message& message) {
  Result<Transaction> tx = Transaction::FromJson(message.payload);
  if (!tx.ok()) {
    MEDSYNC_LOG(kWarning, config_.id) << "bad tx payload: " << tx.status();
    return;
  }
  // Skip if already on the canonical chain (late gossip).
  if (chain_.FindTransaction(tx->Id(), nullptr, nullptr)) return;
  Status added = mempool_.Add(std::move(*tx));
  if (added.ok()) {
    // First sighting: relay so the gossip floods the network.
    network_->Broadcast(config_.id, "tx", message.payload);
  }
}

void ChainNode::AdoptOrphansOf(const std::string& parent_hash_hex) {
  auto it = orphans_.find(parent_hash_hex);
  if (it == orphans_.end()) return;
  std::vector<Block> children = std::move(it->second);
  orphans_.erase(it);
  for (Block& child : children) {
    std::string child_hash = child.header.Hash().ToHex();
    Status added = AddBlockPersist(std::move(child));
    if (added.ok()) AdoptOrphansOf(child_hash);
  }
}

Status ChainNode::AcceptBlock(Block block, const net::NodeId& from) {
  std::string block_hash = block.header.Hash().ToHex();
  std::string parent_hash = block.header.parent.ToHex();
  Status added = AddBlockPersist(block);
  if (added.IsNotFound()) {
    // Orphan: buffer it and ask the sender for the missing parent.
    orphans_[parent_hash].push_back(std::move(block));
    if (!from.empty()) {
      Json request = Json::MakeObject();
      request.Set("hash", parent_hash);
      LogIfError(
          network_->Send(
              net::Message{config_.id, from, "block_request", request}),
          "chain", "orphan parent request");
    }
    return added;
  }
  if (!added.ok()) return added;
  AdoptOrphansOf(block_hash);
  return Status::OK();
}

void ChainNode::HandleBlockPayload(const Json& payload,
                                   const net::NodeId& from) {
  Result<Block> block = Block::FromJson(payload);
  if (!block.ok()) {
    MEDSYNC_LOG(kWarning, config_.id)
        << "bad block payload: " << block.status();
    return;
  }
  uint64_t old_height = chain_.head().header.height;
  Status accepted = AcceptBlock(std::move(*block), from);
  if (accepted.IsAlreadyExists()) return;  // do not re-gossip duplicates
  if (!accepted.ok() && !accepted.IsNotFound()) {
    MEDSYNC_LOG(kWarning, config_.id) << "rejected block: " << accepted;
    return;
  }
  if (accepted.ok()) {
    network_->Broadcast(config_.id, "block", payload);
    // Evict included transactions from the local pool.
    std::set<std::string> included;
    for (const chain::Block* b : chain_.CanonicalChain()) {
      if (b->header.height > old_height) {
        for (const Transaction& tx : b->transactions) {
          included.insert(tx.Id().ToHex());
        }
      }
    }
    if (!included.empty()) mempool_.RemoveIncluded(included);
    AdvanceExecution();
  }
}

void ChainNode::HandleBlockRequest(const net::Message& message) {
  auto hash_hex = message.payload.GetString("hash");
  if (!hash_hex.ok()) return;
  bool ok = false;
  crypto::Hash256 hash = crypto::Hash256::FromHex(*hash_hex, &ok);
  if (!ok) return;
  Result<const Block*> block = chain_.BlockByHash(hash);
  if (!block.ok()) return;
  LogIfError(network_->Send(net::Message{config_.id, message.from,
                                         "block_response", (*block)->ToJson()}),
             "chain", "block response");
}

void ChainNode::AdvanceExecution() {
  std::vector<const Block*> canonical = chain_.CanonicalChain();

  // Is the executed prefix still on the canonical chain?
  bool prefix_ok = executed_hashes_.size() <= canonical.size();
  if (prefix_ok) {
    for (size_t i = 0; i < executed_hashes_.size(); ++i) {
      if (canonical[i]->header.Hash().ToHex() != executed_hashes_[i]) {
        prefix_ok = false;
        break;
      }
    }
  }
  if (!prefix_ok) {
    // Reorg: rebuild contract state from genesis (cheap at simulation
    // scale; a production node would checkpoint).
    MEDSYNC_LOG(kInfo, config_.id) << "reorg: replaying canonical chain";
    host_->Reset();
    executed_hashes_.clear();
    executed_hashes_.push_back(canonical[0]->header.Hash().ToHex());
  }

  for (size_t i = executed_hashes_.size(); i < canonical.size(); ++i) {
    const Block& block = *canonical[i];
    std::vector<contracts::Receipt> receipts = host_->ExecuteBlock(block);
    executed_hashes_.push_back(block.header.Hash().ToHex());
    for (const contracts::Receipt& receipt : receipts) {
      for (const ReceiptCallback& callback : receipt_callbacks_) {
        callback(receipt);
      }
      if (receipt.ok) {
        for (const contracts::Event& event : receipt.events) {
          for (const EventCallback& callback : event_callbacks_) {
            callback(block.header.height, event);
          }
        }
      }
    }
  }
}

}  // namespace medsync::runtime
