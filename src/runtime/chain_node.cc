#include "runtime/chain_node.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "common/threading/thread_pool.h"

namespace medsync::runtime {

using chain::Block;
using chain::Transaction;

ChainNode::ChainNode(NodeConfig config, net::Scheduler* scheduler,
                     net::Network* network,
                     std::shared_ptr<const chain::Sealer> sealer,
                     Block genesis,
                     chain::Blockchain::ConflictKeyFn conflict_key,
                     std::unique_ptr<contracts::ContractHost> host)
    : config_(std::move(config)),
      scheduler_(scheduler),
      network_(network),
      sealer_(std::move(sealer)),
      host_(std::move(host)) {
  const size_t lane_count = std::max<size_t>(1, config_.lane_count);
  lanes_.reserve(lane_count);
  for (size_t l = 0; l < lane_count; ++l) {
    // Lane 0 adopts the caller's genesis unmodified (single-lane setups
    // stay byte-compatible); higher lanes derive theirs by stamping the
    // lane id, so every lane's chain starts from a distinct, deterministic
    // genesis hash shared by all nodes.
    Block lane_genesis = genesis;
    if (l > 0) lane_genesis.header.lane = static_cast<uint32_t>(l);
    lanes_.push_back(std::make_unique<Lane>(std::move(lane_genesis),
                                            sealer_.get(), conflict_key,
                                            config_.pool, conflict_key));
    lanes_.back()->executed_hashes.push_back(
        lanes_.back()->chain.genesis().header.Hash().ToHex());
  }
  lane_assign_ = chain::MakeLaneAssign(config_.lane_key, lane_count);
  if (config_.metrics != nullptr) {
    for (auto& lane : lanes_) {
      lane->chain.set_metrics(config_.metrics);
      lane->mempool.set_metrics(config_.metrics);
    }
    seal_attempts_ = config_.metrics->GetCounter("node.seal.attempts");
    seal_sealed_ = config_.metrics->GetCounter("node.seal.sealed");
    seal_skipped_ = config_.metrics->GetCounter("node.seal.skipped");
    lane_sealed_ = config_.metrics->GetCounter("chain.lane.sealed");
    lane_deferred_ = config_.metrics->GetCounter("chain.lane.deferred");
    lane_batch_txs_ = config_.metrics->GetHistogram("chain.lane.batch_txs");
  }
}

ChainNode::~ChainNode() {
  *alive_ = false;
  // Same contract as Peer::~Peer: queued deliveries to this id become
  // dropped-as-detached instead of landing on freed memory.
  if (started_) network_->Detach(config_.id);
}

Json ChainNode::MetricsSnapshot() const {
  return config_.metrics != nullptr ? config_.metrics->Snapshot()
                                    : Json::MakeObject();
}

size_t ChainNode::mempool_total_size() const {
  size_t total = 0;
  for (const auto& lane : lanes_) total += lane->mempool.size();
  return total;
}

bool ChainNode::mempools_empty() const {
  for (const auto& lane : lanes_) {
    if (!lane->mempool.empty()) return false;
  }
  return true;
}

void ChainNode::Start() {
  if (started_) return;
  started_ = true;
  network_->Attach(config_.id, this);
  if (config_.sealing_enabled) {
    scheduler_->Schedule(config_.block_interval, [this, alive = alive_] {
      if (!*alive) return;
      SealTick();
    });
  }
}

Status ChainNode::EnablePersistence(const std::string& path) {
  if (block_store_.has_value()) {
    return Status::FailedPrecondition("persistence already enabled");
  }
  std::vector<chain::Block> recovered;
  MEDSYNC_ASSIGN_OR_RETURN(BlockStore store, BlockStore::Open(path,
                                                              &recovered));
  for (chain::Block& block : recovered) {
    const uint32_t lane = block.header.lane;
    if (lane >= lanes_.size()) {
      return Status::Corruption(
          StrCat("stored block names lane ", lane, " but this node runs ",
                 lanes_.size(), " lanes"));
    }
    Status added = lanes_[lane]->chain.AddBlock(std::move(block));
    if (!added.ok() && !added.IsAlreadyExists()) {
      return added.WithPrefix("replaying stored blocks");
    }
  }
  block_store_ = std::move(store);
  if (!recovered.empty()) {
    MEDSYNC_LOG(kInfo, config_.id)
        << "recovered " << recovered.size() << " stored blocks, lane-0 head "
        << lanes_[0]->chain.head().header.height;
    AdvanceExecution();
  }
  return Status::OK();
}

Status ChainNode::AddBlockPersist(chain::Block block) {
  const uint32_t lane = block.header.lane;
  if (lane >= lanes_.size()) {
    return Status::InvalidArgument(
        StrCat("block names lane ", lane, " but this node runs ",
               lanes_.size(), " lanes"));
  }
  // Copy needed for the append; AddBlock consumes the block.
  chain::Block stored = block;
  MEDSYNC_RETURN_IF_ERROR(lanes_[lane]->chain.AddBlock(std::move(block)));
  if (block_store_.has_value()) {
    Status appended = block_store_->Append(stored);
    if (!appended.ok()) {
      MEDSYNC_LOG(kWarning, config_.id)
          << "block store append failed: " << appended;
    }
  }
  return Status::OK();
}

void ChainNode::SealTick() {
  TrySealLanes();
  // Head announcement keeps lagging replicas live: a peer that missed
  // blocks (partition, drops) learns the current heads and chases the
  // missing ancestry via block_request. Without this, PoA rotation can
  // deadlock — if it is the lagging authority's turn, nobody else may seal
  // and no new block would ever reach it. One announce carries every
  // lane's head so catch-up stays a single broadcast per tick.
  Json heads = Json::MakeArray();
  for (size_t l = 0; l < lanes_.size(); ++l) {
    const Block& head = lanes_[l]->chain.head();
    if (head.header.height == 0) continue;
    Json entry = Json::MakeObject();
    entry.Set("lane", static_cast<int64_t>(l));
    entry.Set("hash", head.header.Hash().ToHex());
    entry.Set("height", head.header.height);
    heads.Append(std::move(entry));
  }
  if (!heads.AsArray().empty()) {
    Json announce = Json::MakeObject();
    announce.Set("heads", std::move(heads));
    network_->Broadcast(config_.id, "head_announce", announce);
  }
  // Re-gossip pooled transactions: on a lossy network, the broadcast made
  // at submission time may never have reached the authority whose turn it
  // is, and a transaction stuck in one node's pool would stall the sender
  // forever. Receivers dedupe, so this is idempotent. Lane order keeps the
  // rebroadcast sequence deterministic.
  for (const auto& lane : lanes_) {
    for (const Transaction& tx : lane->mempool.PendingTransactions()) {
      network_->Broadcast(config_.id, "tx", tx.ToJson());
    }
  }
  scheduler_->Schedule(config_.block_interval, [this, alive = alive_] {
    if (!*alive) return;
    SealTick();
  });
}

void ChainNode::MaybeRequestBlock(uint32_t lane, const std::string& hash_hex,
                                  uint64_t height, const net::NodeId& from) {
  if (height <= lanes_[lane]->chain.head().header.height) return;
  bool ok = false;
  crypto::Hash256 hash = crypto::Hash256::FromHex(hash_hex, &ok);
  if (!ok || lanes_[lane]->chain.BlockByHash(hash).ok()) return;
  Json request = Json::MakeObject();
  request.Set("hash", hash_hex);
  LogIfError(
      network_->Send(
          net::Message{config_.id, from, "block_request", request}),
      "chain", "head-announce block request");
}

void ChainNode::HandleHeadAnnounce(const net::Message& message) {
  const Json& heads = message.payload.At("heads");
  if (heads.is_array()) {
    for (const Json& entry : heads.AsArray()) {
      auto lane = entry.GetInt("lane");
      auto hash_hex = entry.GetString("hash");
      auto height = entry.GetInt("height");
      if (!lane.ok() || !hash_hex.ok() || !height.ok()) continue;
      if (*lane < 0 || static_cast<size_t>(*lane) >= lanes_.size()) continue;
      MaybeRequestBlock(static_cast<uint32_t>(*lane), *hash_hex,
                        static_cast<uint64_t>(*height), message.from);
    }
    return;
  }
  // Legacy flat {hash, height} announce from single-lane peers.
  auto hash_hex = message.payload.GetString("hash");
  auto height = message.payload.GetInt("height");
  if (!hash_hex.ok() || !height.ok()) return;
  MaybeRequestBlock(0, *hash_hex, static_cast<uint64_t>(*height),
                    message.from);
}

ChainNode::SealOutcome ChainNode::BuildLaneCandidate(Lane& lane) {
  SealOutcome out;
  std::vector<Transaction> txs =
      lane.mempool.BuildBlockCandidate(config_.max_block_txs, &out.deferred);

  // Evict candidates that are already on this lane's canonical chain. This
  // can happen after a reorg (the pool is not replayed) or when eviction
  // raced gossip; without the filter the sealed block would carry a
  // duplicate transaction, fail validation, and this authority's turn
  // would stall forever.
  std::set<std::string> stale;
  std::vector<Transaction> fresh;
  fresh.reserve(txs.size());
  for (Transaction& tx : txs) {
    if (lane.chain.FindTransaction(tx.Id(), nullptr, nullptr)) {
      stale.insert(tx.Id().ToHex());
    } else {
      fresh.push_back(std::move(tx));
    }
  }
  if (!stale.empty()) lane.mempool.RemoveIncluded(stale);
  txs = std::move(fresh);

  if (txs.empty() && !config_.seal_empty_blocks) return out;

  Block block;
  block.header.lane = lane.chain.lane();
  block.header.height = lane.chain.head().header.height + 1;
  block.header.parent = lane.chain.head().header.Hash();
  block.header.timestamp =
      std::max(scheduler_->Now(), lane.chain.head().header.timestamp);
  block.transactions = std::move(txs);
  // With multiple lanes the lane tasks themselves occupy the pool, so the
  // Merkle commitment stays serial per lane (nesting ParallelFor inside a
  // pooled task would have tasks waiting on workers they block).
  block.header.merkle_root = block.ComputeMerkleRoot(
      lanes_.size() > 1 ? nullptr : config_.pool);

  metrics::Inc(seal_attempts_);
  Status sealed = sealer_->Seal(&block);
  if (!sealed.ok()) {
    // Not our turn (PoA rotation) or no key — wait for the next tick.
    metrics::Inc(seal_skipped_);
    MEDSYNC_LOG(kDebug, config_.id) << "seal skipped: " << sealed;
    return out;
  }
  out.sealed = true;
  out.block = std::move(block);
  return out;
}

void ChainNode::TrySealLanes() {
  // Phase 1 — per-lane candidate + seal. Lanes touch disjoint state (their
  // own chain + mempool partition; metrics are atomic and commutative), so
  // the phase parallelizes over the shared pool without changing results.
  std::vector<SealOutcome> outcomes(lanes_.size());
  if (config_.pool != nullptr && lanes_.size() > 1) {
    threading::TaskGroup group(config_.pool);
    for (size_t l = 0; l < lanes_.size(); ++l) {
      group.Run([this, l, &outcomes] {
        outcomes[l] = BuildLaneCandidate(*lanes_[l]);
      });
    }
    group.Wait();
  } else {
    for (size_t l = 0; l < lanes_.size(); ++l) {
      outcomes[l] = BuildLaneCandidate(*lanes_[l]);
    }
  }

  // Phase 2 — lane-ordered insert, evict, broadcast: serial so persistence
  // appends, gossip send order, and execution stay deterministic.
  bool advanced = false;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    SealOutcome& out = outcomes[l];
    if (!out.sealed) continue;
    Status added = AddBlockPersist(out.block);
    if (!added.ok()) {
      MEDSYNC_LOG(kWarning, config_.id)
          << "own sealed block rejected: " << added;
      continue;
    }
    ++blocks_sealed_;
    metrics::Inc(seal_sealed_);
    metrics::Inc(lane_sealed_);
    metrics::Inc(lane_deferred_, out.deferred);
    metrics::Observe(lane_batch_txs_, out.block.transactions.size());
    MEDSYNC_LOG(kInfo, config_.id)
        << "sealed block " << out.block.header.height << " on lane "
        << out.block.header.lane << " (" << out.block.transactions.size()
        << " txs)";

    std::set<std::string> included;
    for (const Transaction& tx : out.block.transactions) {
      included.insert(tx.Id().ToHex());
    }
    lanes_[l]->mempool.RemoveIncluded(included);
    network_->Broadcast(config_.id, "block", out.block.ToJson());
    advanced = true;
  }
  if (advanced) AdvanceExecution();
}

Status ChainNode::SubmitTransaction(Transaction tx) {
  Json payload = tx.ToJson();
  const uint32_t lane = lane_assign_(tx);
  MEDSYNC_RETURN_IF_ERROR(lanes_[lane]->mempool.Add(std::move(tx)));
  network_->Broadcast(config_.id, "tx", payload);
  return Status::OK();
}

Result<Json> ChainNode::Query(const crypto::Address& contract,
                              const std::string& method, const Json& params,
                              const crypto::Address& caller) {
  return host_->StaticCall(contract, method, params, caller);
}

const contracts::Receipt* ChainNode::FindReceipt(
    const std::string& tx_id_hex) const {
  return host_->FindReceipt(tx_id_hex);
}

void ChainNode::SubscribeEvents(EventCallback callback) {
  event_callbacks_.push_back(std::move(callback));
}

void ChainNode::SubscribeReceipts(ReceiptCallback callback) {
  receipt_callbacks_.push_back(std::move(callback));
}

void ChainNode::OnMessage(const net::Message& message) {
  if (message.type == "tx") {
    HandleTransactionMessage(message);
  } else if (message.type == "block") {
    HandleBlockPayload(message.payload, message.from);
  } else if (message.type == "block_request") {
    HandleBlockRequest(message);
  } else if (message.type == "head_announce") {
    HandleHeadAnnounce(message);
  } else if (message.type == "block_response") {
    HandleBlockPayload(message.payload, message.from);
  } else {
    MEDSYNC_LOG(kDebug, config_.id)
        << "ignoring message type '" << message.type << "'";
  }
}

void ChainNode::HandleTransactionMessage(const net::Message& message) {
  Result<Transaction> tx = Transaction::FromJson(message.payload);
  if (!tx.ok()) {
    MEDSYNC_LOG(kWarning, config_.id) << "bad tx payload: " << tx.status();
    return;
  }
  const uint32_t lane = lane_assign_(*tx);
  // Skip if already on the lane's canonical chain (late gossip).
  if (lanes_[lane]->chain.FindTransaction(tx->Id(), nullptr, nullptr)) return;
  Status added = lanes_[lane]->mempool.Add(std::move(*tx));
  if (added.ok()) {
    // First sighting: relay so the gossip floods the network.
    network_->Broadcast(config_.id, "tx", message.payload);
  }
}

void ChainNode::AdoptOrphansOf(const std::string& parent_hash_hex) {
  auto it = orphans_.find(parent_hash_hex);
  if (it == orphans_.end()) return;
  std::vector<Block> children = std::move(it->second);
  orphans_.erase(it);
  for (Block& child : children) {
    std::string child_hash = child.header.Hash().ToHex();
    Status added = AddBlockPersist(std::move(child));
    if (added.ok()) AdoptOrphansOf(child_hash);
  }
}

Status ChainNode::AcceptBlock(Block block, const net::NodeId& from) {
  std::string block_hash = block.header.Hash().ToHex();
  std::string parent_hash = block.header.parent.ToHex();
  Status added = AddBlockPersist(block);
  if (added.IsNotFound()) {
    // Orphan: buffer it and ask the sender for the missing parent.
    orphans_[parent_hash].push_back(std::move(block));
    if (!from.empty()) {
      Json request = Json::MakeObject();
      request.Set("hash", parent_hash);
      LogIfError(
          network_->Send(
              net::Message{config_.id, from, "block_request", request}),
          "chain", "orphan parent request");
    }
    return added;
  }
  if (!added.ok()) return added;
  AdoptOrphansOf(block_hash);
  return Status::OK();
}

void ChainNode::HandleBlockPayload(const Json& payload,
                                   const net::NodeId& from) {
  Result<Block> block = Block::FromJson(payload);
  if (!block.ok()) {
    MEDSYNC_LOG(kWarning, config_.id)
        << "bad block payload: " << block.status();
    return;
  }
  const uint32_t lane = block->header.lane;
  if (lane >= lanes_.size()) {
    MEDSYNC_LOG(kWarning, config_.id)
        << "rejected block naming unknown lane " << lane;
    return;
  }
  uint64_t old_height = lanes_[lane]->chain.head().header.height;
  Status accepted = AcceptBlock(std::move(*block), from);
  if (accepted.IsAlreadyExists()) return;  // do not re-gossip duplicates
  if (!accepted.ok() && !accepted.IsNotFound()) {
    MEDSYNC_LOG(kWarning, config_.id) << "rejected block: " << accepted;
    return;
  }
  if (accepted.ok()) {
    network_->Broadcast(config_.id, "block", payload);
    // Evict included transactions from the lane's pool partition.
    std::set<std::string> included;
    for (const chain::Block* b : lanes_[lane]->chain.CanonicalChain()) {
      if (b->header.height > old_height) {
        for (const Transaction& tx : b->transactions) {
          included.insert(tx.Id().ToHex());
        }
      }
    }
    if (!included.empty()) lanes_[lane]->mempool.RemoveIncluded(included);
    ScheduleExecution();
  }
}

void ChainNode::ScheduleExecution() {
  if (execution_scheduled_) return;
  execution_scheduled_ = true;
  // Delay 0 queues BEHIND every already-delivered message of this instant
  // (both schedulers are FIFO within a timestamp), so a multi-lane tick's
  // blocks all land before the single batch runs.
  scheduler_->Schedule(0, [this, alive = alive_] {
    if (!*alive) return;
    execution_scheduled_ = false;
    AdvanceExecution();
  });
}

void ChainNode::HandleBlockRequest(const net::Message& message) {
  auto hash_hex = message.payload.GetString("hash");
  if (!hash_hex.ok()) return;
  bool ok = false;
  crypto::Hash256 hash = crypto::Hash256::FromHex(*hash_hex, &ok);
  if (!ok) return;
  // Block hashes are unique across lanes (the lane id is hashed into the
  // header), so the first hit is THE block.
  for (const auto& lane : lanes_) {
    Result<const Block*> block = lane->chain.BlockByHash(hash);
    if (!block.ok()) continue;
    LogIfError(
        network_->Send(net::Message{config_.id, message.from, "block_response",
                                    (*block)->ToJson()}),
        "chain", "block response");
    return;
  }
}

void ChainNode::AdvanceExecution() {
  // Collect every lane's canonical chain and check the executed prefixes.
  // A reorg in ANY lane rebuilds contract state from scratch: the host is
  // a single cross-lane state machine, so rewinding one lane means
  // replaying all of them (cheap at simulation scale; a production node
  // would checkpoint).
  std::vector<std::vector<const Block*>> canonical(lanes_.size());
  bool reorg = false;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    canonical[l] = lanes_[l]->chain.CanonicalChain();
    const std::vector<std::string>& executed = lanes_[l]->executed_hashes;
    bool prefix_ok = executed.size() <= canonical[l].size();
    if (prefix_ok) {
      for (size_t i = 0; i < executed.size(); ++i) {
        if (canonical[l][i]->header.Hash().ToHex() != executed[i]) {
          prefix_ok = false;
          break;
        }
      }
    }
    if (!prefix_ok) reorg = true;
  }
  if (reorg) {
    MEDSYNC_LOG(kInfo, config_.id)
        << "reorg: replaying canonical chains of all lanes";
    host_->Reset();
    for (size_t l = 0; l < lanes_.size(); ++l) {
      lanes_[l]->executed_hashes.clear();
      lanes_[l]->executed_hashes.push_back(
          canonical[l][0]->header.Hash().ToHex());
    }
  }

  // Execute lane by lane, in lane order. Within a lane this is the usual
  // canonical-order execution; ACROSS lanes the interleave is not globally
  // ordered, which is sound because the lane key confines each shared
  // table's operations to one lane and cross-table contract operations
  // commute.
  struct Dispatch {
    Micros timestamp = 0;  // block timestamp
    uint64_t height = 0;   // block height (for the event callbacks)
    contracts::Receipt receipt;
  };
  std::vector<Dispatch> dispatches;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    std::vector<std::string>& executed = lanes_[l]->executed_hashes;
    for (size_t i = executed.size(); i < canonical[l].size(); ++i) {
      const Block& block = *canonical[l][i];
      std::vector<contracts::Receipt> receipts = host_->ExecuteBlock(block);
      executed.push_back(block.header.Hash().ToHex());
      for (contracts::Receipt& receipt : receipts) {
        dispatches.push_back(Dispatch{block.header.timestamp,
                                      block.header.height,
                                      std::move(receipt)});
      }
    }
  }
  // Notify subscribers in (block timestamp, tx id) order — content-defined,
  // so it is identical however the same transactions were spread across
  // lanes (and hence blocks). Per-table order is preserved: a table's
  // transactions all sit in one lane, whose blocks have strictly
  // increasing timestamps. NOT per-lane block order, on purpose — lane
  // count must not leak into subscriber-visible message order.
  std::sort(dispatches.begin(), dispatches.end(),
            [](const Dispatch& a, const Dispatch& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.receipt.tx_id < b.receipt.tx_id;
            });
  for (const Dispatch& dispatch : dispatches) {
    for (const ReceiptCallback& callback : receipt_callbacks_) {
      callback(dispatch.receipt);
    }
    if (dispatch.receipt.ok) {
      for (const contracts::Event& event : dispatch.receipt.events) {
        for (const EventCallback& callback : event_callbacks_) {
          callback(dispatch.height, event);
        }
      }
    }
  }
}

}  // namespace medsync::runtime
