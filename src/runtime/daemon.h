#ifndef MEDSYNC_RUNTIME_DAEMON_H_
#define MEDSYNC_RUNTIME_DAEMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics/metrics.h"
#include "crypto/keys.h"
#include "net/network.h"
#include "net/scheduler.h"
#include "runtime/chain_node.h"

namespace medsync::runtime {

/// Options for hosting one ChainNode as (part of) an OS process.
///
/// Every process of a deployment must agree on `authority_count`,
/// `genesis_timestamp`, `block_interval`, and `max_block_txs` — they
/// determine the authority set, the genesis block, and sealing cadence.
/// Identities are deterministic (authority-i key seeds), so processes
/// bootstrap independently with no coordination service: the static route
/// map of the socket transport is the only shared configuration.
struct NodeDaemonOptions {
  /// This process's index in the authority set (node id "chain-node-<i>").
  size_t node_index = 0;
  size_t authority_count = 4;
  Micros block_interval = 500 * kMicrosPerMilli;
  size_t max_block_txs = 100;
  /// Genesis timestamp; must be identical across processes (the default
  /// SimClock epoch keeps sim and socket deployments genesis-compatible).
  Micros genesis_timestamp = SimClock::kDefaultEpoch;
  metrics::MetricsRegistry* metrics = nullptr;
};

/// Hosts one PoA ChainNode over any execution plane (Simulator for tests,
/// EventLoop + SocketTransport for deployment). This is the chain half of
/// `chain_node_daemon`; role-playing peers layer on top in core.
class NodeDaemon {
 public:
  NodeDaemon(const NodeDaemonOptions& options, net::Scheduler* scheduler,
             net::Network* network);

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  /// Starts sealing/gossip (ChainNode::Start).
  void Start();

  ChainNode& node() { return *node_; }
  const ChainNode& node() const { return *node_; }

  static std::string NodeIdFor(size_t index);

  /// The deterministic authority address set every process agrees on.
  static std::vector<crypto::Address> Authorities(size_t count);

 private:
  std::unique_ptr<ChainNode> node_;
};

}  // namespace medsync::runtime

#endif  // MEDSYNC_RUNTIME_DAEMON_H_
