#include "net/frame.h"

#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"

namespace medsync::net {

namespace {

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8;
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderSize + frame.type.size() + frame.payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  AppendU16(&out, kFrameVersion);
  AppendU16(&out, 0);  // flags
  AppendU32(&out, static_cast<uint32_t>(frame.type.size()));
  AppendU32(&out, static_cast<uint32_t>(frame.payload.size()));
  uint32_t crc;
  if (frame.payload.empty()) {
    crc = Crc32(frame.type);
  } else {
    // The CRC covers type ++ payload as one stream; Crc32() doesn't expose
    // a resumable register, so join once (bounded by the payload cap).
    std::string joined;
    joined.reserve(frame.type.size() + frame.payload.size());
    joined.append(frame.type);
    joined.append(frame.payload);
    crc = Crc32(joined);
  }
  AppendU32(&out, crc);
  out.append(frame.type);
  out.append(frame.payload);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so a long-lived connection doesn't grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (corrupt_) {
    return Status::Corruption("frame stream already corrupt");
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) {
    return std::optional<Frame>(std::nullopt);
  }
  const char* p = buffer_.data() + consumed_;

  auto fail = [this](std::string message) -> Status {
    corrupt_ = true;
    return Status::Corruption(std::move(message));
  };

  if (std::memcmp(p, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return fail("frame magic mismatch");
  }
  const uint16_t version = ReadU16(p + 4);
  if (version != kFrameVersion) {
    return fail(StrCat("unsupported frame version ", version));
  }
  const uint16_t flags = ReadU16(p + 6);
  if (flags != 0) {
    return fail(StrCat("nonzero frame flags ", flags));
  }
  const uint32_t type_len = ReadU32(p + 8);
  const uint32_t payload_len = ReadU32(p + 12);
  if (type_len > kMaxFrameTypeLen) {
    return fail(StrCat("frame type length ", type_len, " exceeds cap"));
  }
  if (payload_len > kMaxFramePayloadLen) {
    return fail(StrCat("frame payload length ", payload_len, " exceeds cap"));
  }
  const uint32_t expected_crc = ReadU32(p + 16);

  const size_t body_len = static_cast<size_t>(type_len) + payload_len;
  if (available < kFrameHeaderSize + body_len) {
    return std::optional<Frame>(std::nullopt);
  }

  std::string_view body(p + kFrameHeaderSize, body_len);
  if (Crc32(body) != expected_crc) {
    return fail("frame CRC mismatch");
  }

  Frame frame;
  frame.type.assign(body.substr(0, type_len));
  frame.payload.assign(body.substr(type_len));
  consumed_ += kFrameHeaderSize + body_len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace medsync::net
