#ifndef MEDSYNC_NET_SOCKET_TRANSPORT_H_
#define MEDSYNC_NET_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics/metrics.h"
#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/network.h"

namespace medsync::net {

/// `Network` over real non-blocking TCP: the deployment counterpart of
/// `SimNetwork`. One transport per OS process; every endpoint Attach()ed
/// locally (a ChainNode, a Peer, its ReliableChannel) shares the process's
/// single listening socket, and a static route map names where every remote
/// id lives. Frames (net/frame.h) carry a JSON envelope
/// {"from","to","body"} so one TCP connection multiplexes all id pairs.
///
/// Loss semantics mirror SimNetwork's datagram contract: Send() to an id
/// that is neither local nor routed fails NotFound unaccounted; an accepted
/// message that later hits a broken/unconnectable peer or a corrupt stream
/// is silently dropped and counted. ReliableChannel above recovers, which
/// is exactly why it exists.
///
/// Single-threaded: everything runs on the owning EventLoop's thread.
struct SocketTransportOptions {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = ephemeral; read back via port()
  /// Remote id -> "host:port". Several ids mapping to one address means
  /// one process hosts them all (e.g. a peer and its chain node).
  std::map<NodeId, std::string> routes;
  /// Wire-input hardening: JSON nesting depth accepted from the network
  /// (far below the parser's general default — hostile bytes, not our own
  /// checkpoints).
  size_t max_wire_json_depth = 64;
};

class SocketTransport final : public Network {
 public:
  SocketTransport(EventLoop* loop, SocketTransportOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Binds + listens and registers with the event loop. Must be called
  /// before messages can arrive; Send() works without it (outbound only).
  Status Listen();

  /// The bound port (after Listen(); 0 before).
  uint16_t port() const { return port_; }

  /// Adds/overwrites a route after construction (for ephemeral-port
  /// harnesses that learn peer ports only after every transport Listen()s).
  void AddRoute(const NodeId& id, const std::string& host_port);

  // Network:
  void Attach(const NodeId& id, Endpoint* endpoint) override;
  void Detach(const NodeId& id) override;
  bool IsAttached(const NodeId& id) const override;
  Status Send(Message message) override;
  void Broadcast(const NodeId& from, const std::string& type,
                 const Json& payload) override;
  const Stats& stats() const override { return stats_; }
  void set_metrics(metrics::MetricsRegistry* registry) override;
  std::vector<NodeId> AttachedNodes() const override;

  /// Frames dropped because their stream failed CRC/framing checks
  /// (mirrored to the net.frame_corrupt counter when metrics are attached).
  uint64_t frame_corrupt_count() const { return frame_corrupt_; }

  /// Open TCP connections (inbound + outbound), for tests.
  size_t connection_count() const { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    std::string address;   // "host:port" key for outbound; "" for inbound
    bool connecting = false;
    std::vector<std::string> outbox;  // encoded frames not yet written
    size_t outbox_offset = 0;         // bytes of outbox.front() written
    FrameDecoder decoder;
  };

  Status SendSized(Message message, size_t payload_bytes);
  void DeliverLocal(Message message);
  Status QueueToAddress(const std::string& address, const Message& message,
                        size_t payload_bytes);
  Connection* GetOrConnect(const std::string& address, Status* status);
  void OnListenReady(uint32_t events);
  void OnConnectionReady(int fd, uint32_t events);
  void HandleReadable(Connection* conn);
  /// Decodes + delivers every complete frame; returns false if the stream
  /// was condemned (connection closed and erased).
  bool DrainFrames(Connection* conn);
  void HandleWritable(Connection* conn);
  void FlushOutbox(Connection* conn);
  void UpdateInterest(Connection* conn);
  /// Closes and forgets the connection; queued frames count as dropped.
  void CloseConnection(int fd);
  void CountDropped(uint64_t n, const char* reason);
  void CountCorrupt(const char* what, const Status& status);

  EventLoop* loop_;
  SocketTransportOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::map<NodeId, Endpoint*> endpoints_;
  std::map<int, std::unique_ptr<Connection>> connections_;
  /// Outbound connection per remote address (fd keyed into connections_).
  std::map<std::string, int> outbound_by_address_;
  Stats stats_;
  uint64_t frame_corrupt_ = 0;

  metrics::MetricsRegistry* registry_ = nullptr;
  metrics::Counter* sent_counter_ = nullptr;
  metrics::Counter* delivered_counter_ = nullptr;
  metrics::Counter* dropped_counter_ = nullptr;
  metrics::Counter* bytes_counter_ = nullptr;
  metrics::Counter* frame_corrupt_counter_ = nullptr;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_SOCKET_TRANSPORT_H_
