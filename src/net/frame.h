#ifndef MEDSYNC_NET_FRAME_H_
#define MEDSYNC_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace medsync::net {

/// Length-prefixed binary frame codec for the socket transport, reusing the
/// CRC framing discipline of the sealed-chunk files (relational/chunk.cc):
/// a magic tag up front, explicit lengths, and a CRC-32 that must match
/// before a single payload byte is interpreted.
///
/// Layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic "MSYN"
///        4     2  version (currently 1; other values are rejected)
///        6     2  flags (reserved, must be 0)
///        8     4  type_len     (<= 256)
///       12     4  payload_len  (<= 64 MiB)
///       16     4  crc32 over type bytes ++ payload bytes
///       20     …  type bytes, then payload bytes
///
/// `type` is the Message routing type ("tx", "block", "rel.data", ...);
/// `payload` is the serialized JSON envelope. The decoder treats every
/// violation — bad magic, unknown version, nonzero flags, oversized
/// lengths, CRC mismatch — as Corruption, after which the connection must
/// be dropped: a desynchronized byte stream cannot be trusted to resync.

inline constexpr char kFrameMagic[4] = {'M', 'S', 'Y', 'N'};
inline constexpr uint16_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderSize = 20;
inline constexpr size_t kMaxFrameTypeLen = 256;
inline constexpr size_t kMaxFramePayloadLen = 64u * 1024 * 1024;

struct Frame {
  std::string type;
  std::string payload;
};

/// Serializes `frame` (header + body). The caller guarantees the limits;
/// oversized fields are a programming error and are clamped to Corruption
/// at decode time anyway.
std::string EncodeFrame(const Frame& frame);

/// Incremental decoder over an arbitrary re-chunking of the byte stream.
/// Feed() bytes as read(2) produces them — any split, including mid-header
/// — then drain Next() until it yields nullopt.
///
/// Once any corruption is detected the decoder latches: every further
/// Next() fails, and the owner is expected to drop the connection.
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void Feed(std::string_view bytes);

  /// Returns the next complete frame, nullopt if more bytes are needed, or
  /// Corruption (bad magic / version / flags / lengths / CRC).
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered() const { return buffer_.size() - consumed_; }

  bool corrupt() const { return corrupt_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already decoded
  bool corrupt_ = false;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_FRAME_H_
