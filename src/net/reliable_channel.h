#ifndef MEDSYNC_NET_RELIABLE_CHANNEL_H_
#define MEDSYNC_NET_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/metrics/metrics.h"
#include "common/random.h"
#include "net/network.h"
#include "net/scheduler.h"

namespace medsync::net {

/// Reliable at-least-once delivery with receiver-side dedup (so effectively
/// at-most-once to the wrapped endpoint) on top of the lossy datagram
/// Network.
///
/// Each reliable send is wrapped in a "rel.data" envelope carrying a
/// per-destination sequence number and the sender's epoch; the receiving
/// channel acks with "rel.ack", deduplicates replays, unwraps the inner
/// type/payload and forwards it to the wrapped endpoint. Unacked sends are
/// retransmitted with exponential backoff plus seeded jitter until
/// `max_retries` is exhausted, then dropped (`gave_up`). All timing runs on
/// the Scheduler and all randomness comes from a seeded Rng derived from
/// the node id, so runs are byte-identical regardless of drop pattern or
/// thread-pool size.
///
/// The epoch (the sim time the channel was created) makes restarts safe: a
/// rebooted peer's fresh sequence numbers are not mistaken for replays of
/// its previous life, and in-flight messages from that previous life are
/// dropped rather than delivered into the new one.
///
/// Plain (non-envelope) messages pass through to the wrapped endpoint
/// untouched, so a channel-wrapped peer still interoperates with senders
/// that write to the raw network.
class ReliableChannel : public Endpoint {
 public:
  struct Options {
    /// First retransmit fires this long after the original send. The
    /// default comfortably exceeds one request/response round trip (~2x
    /// base latency + jitter), so an acked message is never retransmitted.
    Micros initial_backoff = 300 * kMicrosPerMilli;
    /// Backoff multiplier per retry (exponential).
    double multiplier = 2.0;
    Micros max_backoff = 4 * kMicrosPerSecond;
    /// Uniform [0, jitter] added to every backoff, from the channel's own
    /// seeded Rng — deterministic, but decorrelates competing senders.
    Micros jitter = 100 * kMicrosPerMilli;
    /// Retransmits before giving up on a message.
    int max_retries = 10;
  };

  /// `scheduler`, `network` and `inner` must outlive the channel. The
  /// channel does not attach itself; call Attach() (typically instead of
  /// attaching `inner` directly).
  ReliableChannel(NodeId id, Scheduler* scheduler, Network* network,
                  Endpoint* inner, Options options);
  ReliableChannel(NodeId id, Scheduler* scheduler, Network* network,
                  Endpoint* inner)
      : ReliableChannel(std::move(id), scheduler, network, inner, Options()) {
  }
  ~ReliableChannel() override;

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Attaches this channel to the network under the node id (the wrapped
  /// endpoint then receives unwrapped messages through it).
  void Attach();
  void Detach();

  /// Sends `message` reliably (message.from is overwritten with this
  /// channel's id). Always succeeds locally: an unknown or detached
  /// destination is treated like loss and retried — the destination may be
  /// a peer that is currently restarting.
  Status Send(Message message);

  void OnMessage(const Message& message) override;

  /// Messages sent but not yet acked or given up on.
  size_t pending() const { return pending_.size(); }

  struct Stats {
    uint64_t sends = 0;           // reliable sends requested
    uint64_t retries = 0;         // retransmissions
    uint64_t acks_received = 0;   // pending sends completed by an ack
    uint64_t acks_sent = 0;
    uint64_t duplicates_dropped = 0;   // replays suppressed by dedup
    uint64_t stale_epoch_dropped = 0;  // messages from a dead incarnation
    uint64_t gave_up = 0;         // retry budget exhausted
    uint64_t delivered = 0;       // unique messages forwarded to inner
  };
  const Stats& stats() const { return stats_; }

  /// Mirrors Stats into net.retries / net.acks / net.gave_up (and
  /// net.acks_sent / net.duplicates). The registry must outlive the
  /// channel; nullptr detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

  /// Invoked (with the original, unwrapped message) when the retry budget
  /// for a message is exhausted.
  void set_give_up_callback(std::function<void(const Message&)> callback) {
    give_up_ = std::move(callback);
  }

  Micros epoch() const { return epoch_; }

 private:
  struct PendingSend {
    Message wrapped;  // the rel.data envelope, resent verbatim
    int retries = 0;
  };
  /// Receiver-side dedup state for one remote sender: sequence numbers at
  /// or below `contiguous` were delivered, plus the sparse set above it.
  struct RecvState {
    Micros epoch = -1;
    uint64_t contiguous = 0;
    std::set<uint64_t> beyond;
  };

  void HandleData(const Message& message);
  void HandleAck(const Message& message);
  void ScheduleRetransmit(const NodeId& to, uint64_t seq);
  Micros BackoffDelay(int retries);

  NodeId id_;
  Scheduler* scheduler_;
  Network* network_;
  Endpoint* inner_;
  Options options_;
  Rng rng_;
  Micros epoch_;
  std::map<NodeId, uint64_t> next_seq_;
  std::map<std::pair<NodeId, uint64_t>, PendingSend> pending_;
  std::map<NodeId, RecvState> recv_;
  Stats stats_;
  bool attached_ = false;
  std::function<void(const Message&)> give_up_;

  metrics::Counter* retries_counter_ = nullptr;
  metrics::Counter* acks_counter_ = nullptr;
  metrics::Counter* acks_sent_counter_ = nullptr;
  metrics::Counter* duplicates_counter_ = nullptr;
  metrics::Counter* gave_up_counter_ = nullptr;

  /// Flipped on destruction so queued retransmit timers become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_RELIABLE_CHANNEL_H_
