#include "net/network.h"

#include "common/logging.h"
#include "common/strings.h"

namespace medsync::net {

SimNetwork::SimNetwork(Simulator* simulator, LatencyModel latency,
                       uint64_t seed)
    : simulator_(simulator), latency_(latency), rng_(seed) {}

void SimNetwork::Attach(const NodeId& id, Endpoint* endpoint) {
  endpoints_[id] = endpoint;
}

void SimNetwork::Detach(const NodeId& id) { endpoints_.erase(id); }

bool SimNetwork::IsAttached(const NodeId& id) const {
  return endpoints_.count(id) > 0;
}

void SimNetwork::set_metrics(metrics::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    sent_counter_ = delivered_counter_ = dropped_counter_ = bytes_counter_ =
        nullptr;
    latency_us_ = nullptr;
    return;
  }
  sent_counter_ = registry->GetCounter("net.sent");
  delivered_counter_ = registry->GetCounter("net.delivered");
  dropped_counter_ = registry->GetCounter("net.dropped");
  bytes_counter_ = registry->GetCounter("net.bytes");
  latency_us_ = registry->GetHistogram("net.latency_us");
}

Status SimNetwork::Send(Message message) {
  const size_t payload_bytes = message.payload.SerializedSize();
  return SendSized(std::move(message), payload_bytes);
}

Status SimNetwork::SendSized(Message message, size_t payload_bytes) {
  auto it = endpoints_.find(message.to);
  if (it == endpoints_.end()) {
    // Nothing was handed to the network, so nothing is accounted.
    return Status::NotFound(
        StrCat("no endpoint '", message.to, "' on the network"));
  }
  ++stats_.sent;
  stats_.bytes += payload_bytes;
  metrics::Inc(sent_counter_);
  metrics::Inc(bytes_counter_, payload_bytes);
  if (registry_ != nullptr) {
    registry_->GetCounter(StrCat("net.sent.", message.type))->Increment();
  }

  auto link = message.from < message.to
                  ? std::make_pair(message.from, message.to)
                  : std::make_pair(message.to, message.from);
  if (down_links_.count(link) > 0 ||
      (drop_probability_ > 0.0 && rng_.NextBool(drop_probability_))) {
    ++stats_.dropped;
    metrics::Inc(dropped_counter_);
    if (registry_ != nullptr) {
      registry_->GetCounter(StrCat("net.dropped.", message.type))->Increment();
    }
    return Status::OK();  // datagram semantics: loss is silent
  }

  Micros delay = latency_.base;
  if (latency_.jitter > 0) {
    delay += static_cast<Micros>(
        rng_.NextBelow(static_cast<uint64_t>(latency_.jitter) + 1));
  }
  metrics::Observe(latency_us_, static_cast<uint64_t>(delay));
  NodeId to = message.to;
  simulator_->Schedule(delay, [this, to, message = std::move(message)]() {
    auto endpoint_it = endpoints_.find(to);
    if (endpoint_it == endpoints_.end()) {
      ++stats_.dropped;  // detached mid-flight
      metrics::Inc(dropped_counter_);
      if (registry_ != nullptr) {
        registry_->GetCounter(StrCat("net.dropped.", message.type))
            ->Increment();
      }
      return;
    }
    ++stats_.delivered;
    metrics::Inc(delivered_counter_);
    endpoint_it->second->OnMessage(message);
  });
  return Status::OK();
}

void SimNetwork::Broadcast(const NodeId& from, const std::string& type,
                        const Json& payload) {
  // Measured once for the whole fan-out; every copy has the same payload.
  const size_t payload_bytes = payload.SerializedSize();
  for (const auto& [id, endpoint] : endpoints_) {
    if (id == from) continue;
    Message message;
    message.from = from;
    message.to = id;
    message.type = type;
    message.payload = payload;
    // Broadcast is lossy by contract: per-destination failures (downed
    // links, unknown peers) are the simulated network doing its job.
    LogIfError(SendSized(std::move(message), payload_bytes), "net",
               "broadcast delivery");
  }
}

void SimNetwork::SetLinkDown(const NodeId& a, const NodeId& b, bool down) {
  auto link = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (down) {
    down_links_.insert(link);
  } else {
    down_links_.erase(link);
  }
}

std::vector<NodeId> SimNetwork::AttachedNodes() const {
  std::vector<NodeId> out;
  out.reserve(endpoints_.size());
  for (const auto& [id, endpoint] : endpoints_) out.push_back(id);
  return out;
}

}  // namespace medsync::net
