#include "net/network.h"

#include "common/strings.h"

namespace medsync::net {

Network::Network(Simulator* simulator, LatencyModel latency, uint64_t seed)
    : simulator_(simulator), latency_(latency), rng_(seed) {}

void Network::Attach(const NodeId& id, Endpoint* endpoint) {
  endpoints_[id] = endpoint;
}

void Network::Detach(const NodeId& id) { endpoints_.erase(id); }

bool Network::IsAttached(const NodeId& id) const {
  return endpoints_.count(id) > 0;
}

Status Network::Send(Message message) {
  ++stats_.sent;
  stats_.bytes += message.payload.Dump().size();

  auto it = endpoints_.find(message.to);
  if (it == endpoints_.end()) {
    return Status::NotFound(
        StrCat("no endpoint '", message.to, "' on the network"));
  }

  auto link = message.from < message.to
                  ? std::make_pair(message.from, message.to)
                  : std::make_pair(message.to, message.from);
  if (down_links_.count(link) > 0 ||
      (drop_probability_ > 0.0 && rng_.NextBool(drop_probability_))) {
    ++stats_.dropped;
    return Status::OK();  // datagram semantics: loss is silent
  }

  Micros delay = latency_.base;
  if (latency_.jitter > 0) {
    delay += static_cast<Micros>(
        rng_.NextBelow(static_cast<uint64_t>(latency_.jitter) + 1));
  }
  NodeId to = message.to;
  simulator_->Schedule(delay, [this, to, message = std::move(message)]() {
    auto endpoint_it = endpoints_.find(to);
    if (endpoint_it == endpoints_.end()) {
      ++stats_.dropped;  // detached mid-flight
      return;
    }
    ++stats_.delivered;
    endpoint_it->second->OnMessage(message);
  });
  return Status::OK();
}

void Network::Broadcast(const NodeId& from, const std::string& type,
                        const Json& payload) {
  for (const auto& [id, endpoint] : endpoints_) {
    if (id == from) continue;
    Message message;
    message.from = from;
    message.to = id;
    message.type = type;
    message.payload = payload;
    (void)Send(std::move(message));
  }
}

void Network::SetLinkDown(const NodeId& a, const NodeId& b, bool down) {
  auto link = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (down) {
    down_links_.insert(link);
  } else {
    down_links_.erase(link);
  }
}

std::vector<NodeId> Network::AttachedNodes() const {
  std::vector<NodeId> out;
  out.reserve(endpoints_.size());
  for (const auto& [id, endpoint] : endpoints_) out.push_back(id);
  return out;
}

}  // namespace medsync::net
