#ifndef MEDSYNC_NET_SIMULATOR_H_
#define MEDSYNC_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "net/scheduler.h"

namespace medsync::net {

/// A single-threaded discrete-event scheduler driving a SimClock.
///
/// Everything time-dependent in the reproduction — message delivery,
/// block-sealing intervals, peer timeouts — runs as events here, so a whole
/// multi-node experiment executes deterministically in one process and
/// "12-second Ethereum blocks" (Section IV-1 of the paper) cost simulated,
/// not real, seconds. The wall-clock counterpart is `EventLoop`
/// (net/event_loop.h); both serve protocol code through the `Scheduler`
/// interface.
///
/// Events at equal timestamps fire in scheduling order (FIFO tie-break).
class Simulator : public Scheduler {
 public:
  explicit Simulator(Micros epoch = SimClock::kDefaultEpoch)
      : clock_(epoch) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Micros Now() const override { return clock_.Now(); }
  const SimClock& clock() const { return clock_; }

  /// Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  void Schedule(Micros delay, std::function<void()> fn) override;

  /// Schedules `fn` at absolute time `when` (clamped to now).
  void ScheduleAt(Micros when, std::function<void()> fn);

  /// Runs events until the queue drains. Returns the number executed.
  size_t Run();

  /// Runs events with timestamp <= `when`, then advances the clock to
  /// `when` even if idle. Returns the number executed.
  size_t RunUntil(Micros when);

  /// RunUntil(Now() + duration).
  size_t RunFor(Micros duration);

  /// Executes at most one pending event. Returns false if idle.
  bool Step();

  size_t pending() const { return queue_.size(); }
  bool idle() const { return queue_.empty(); }

  /// Total events executed since construction.
  uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Micros when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_SIMULATOR_H_
