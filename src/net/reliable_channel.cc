#include "net/reliable_channel.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace medsync::net {

namespace {

constexpr char kDataType[] = "rel.data";
constexpr char kAckType[] = "rel.ack";

/// FNV-1a: a stable, platform-independent seed from the node id, so every
/// channel gets its own jitter stream without any global coordination.
uint64_t SeedFromId(const NodeId& id) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : id) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

ReliableChannel::ReliableChannel(NodeId id, Scheduler* scheduler,
                                 Network* network, Endpoint* inner,
                                 Options options)
    : id_(std::move(id)),
      scheduler_(scheduler),
      network_(network),
      inner_(inner),
      options_(options),
      // Mixing in the epoch keeps a restarted incarnation's jitter stream
      // independent of its previous life's.
      rng_(SeedFromId(id_) ^ static_cast<uint64_t>(scheduler->Now())),
      epoch_(scheduler->Now()) {}

ReliableChannel::~ReliableChannel() {
  *alive_ = false;
  if (attached_) network_->Detach(id_);
}

void ReliableChannel::Attach() {
  if (attached_) return;
  attached_ = true;
  network_->Attach(id_, this);
}

void ReliableChannel::Detach() {
  if (!attached_) return;
  attached_ = false;
  network_->Detach(id_);
}

Status ReliableChannel::Send(Message message) {
  const NodeId to = message.to;
  const uint64_t seq = ++next_seq_[to];
  Json envelope = Json::MakeObject();
  envelope.Set("seq", static_cast<int64_t>(seq));
  envelope.Set("epoch", static_cast<int64_t>(epoch_));
  envelope.Set("type", message.type);
  envelope.Set("payload", std::move(message.payload));
  Message wrapped{id_, to, kDataType, std::move(envelope)};

  ++stats_.sends;
  // An unknown destination (NotFound) is not fatal here: the peer may be
  // mid-restart and attach before the retry budget runs out. Losses of any
  // kind are handled by the retransmit timer.
  LogIfError(network_->Send(wrapped), "net", "reliable first send");
  pending_.emplace(std::make_pair(to, seq), PendingSend{std::move(wrapped)});
  ScheduleRetransmit(to, seq);
  return Status::OK();
}

void ReliableChannel::ScheduleRetransmit(const NodeId& to, uint64_t seq) {
  auto it = pending_.find(std::make_pair(to, seq));
  if (it == pending_.end()) return;
  const Micros delay = BackoffDelay(it->second.retries);
  scheduler_->Schedule(delay, [this, alive = alive_, to, seq] {
    if (!*alive) return;
    auto pending_it = pending_.find(std::make_pair(to, seq));
    if (pending_it == pending_.end()) return;  // acked meanwhile
    if (!attached_) {
      // The channel itself is off the network (e.g. mid-restart): acks
      // cannot reach a detached id, so every retransmit now would burn the
      // retry budget against a wall and end in a spurious give-up even
      // though the receiver may have the message. Keep the send pending
      // and look again after the current backoff; Attach() lets the next
      // firing proceed normally.
      ScheduleRetransmit(to, seq);
      return;
    }
    PendingSend& send = pending_it->second;
    if (send.retries >= options_.max_retries) {
      ++stats_.gave_up;
      metrics::Inc(gave_up_counter_);
      // Unwrap so the callback sees what the caller originally sent.
      Message original;
      original.from = id_;
      original.to = to;
      auto type = send.wrapped.payload.GetString("type");
      if (type.ok()) original.type = *type;
      original.payload = send.wrapped.payload.At("payload");
      pending_.erase(pending_it);
      if (give_up_) give_up_(original);
      return;
    }
    ++send.retries;
    ++stats_.retries;
    metrics::Inc(retries_counter_);
    LogIfError(network_->Send(send.wrapped), "net", "retransmit");
    ScheduleRetransmit(to, seq);
  });
}

Micros ReliableChannel::BackoffDelay(int retries) {
  // Clamp to max_backoff BEFORE the integer cast. The exponential
  // `initial_backoff * multiplier^n` can exceed Micros range in a double at
  // high retry counts, and casting an out-of-range double to int64 is UB —
  // on x86 it lands on INT64_MIN, a negative delay the scheduler clamps to
  // zero, turning a capped backoff into a hot retransmit loop that burns
  // the whole retry budget instantly.
  const double cap = static_cast<double>(options_.max_backoff);
  double delay = static_cast<double>(options_.initial_backoff);
  for (int i = 0; i < retries && delay < cap; ++i) {
    delay *= options_.multiplier;
  }
  Micros backoff =
      delay >= cap ? options_.max_backoff : static_cast<Micros>(delay);
  if (options_.jitter > 0 &&
      backoff <= std::numeric_limits<Micros>::max() - options_.jitter) {
    backoff += static_cast<Micros>(
        rng_.NextBelow(static_cast<uint64_t>(options_.jitter) + 1));
  }
  return backoff;
}

void ReliableChannel::OnMessage(const Message& message) {
  if (message.type == kDataType) {
    HandleData(message);
  } else if (message.type == kAckType) {
    HandleAck(message);
  } else {
    // Raw senders (no channel on their side) still reach the endpoint.
    inner_->OnMessage(message);
  }
}

void ReliableChannel::HandleData(const Message& message) {
  auto seq = message.payload.GetInt("seq");
  auto epoch = message.payload.GetInt("epoch");
  auto type = message.payload.GetString("type");
  if (!seq.ok() || !epoch.ok() || !type.ok()) return;

  RecvState& state = recv_[message.from];
  if (*epoch < state.epoch) {
    // A straggler from the sender's previous incarnation: its sender is
    // gone, so neither ack nor deliver.
    ++stats_.stale_epoch_dropped;
    return;
  }
  if (*epoch > state.epoch) {
    // The sender restarted; its sequence numbering starts over.
    state = RecvState{};
    state.epoch = *epoch;
  }

  Json ack = Json::MakeObject();
  ack.Set("seq", *seq);
  ack.Set("epoch", *epoch);
  ++stats_.acks_sent;
  metrics::Inc(acks_sent_counter_);
  LogIfError(
      network_->Send(Message{id_, message.from, kAckType, std::move(ack)}),
      "net", "ack send");

  const uint64_t seq_num = static_cast<uint64_t>(*seq);
  if (seq_num <= state.contiguous || state.beyond.count(seq_num) > 0) {
    ++stats_.duplicates_dropped;
    metrics::Inc(duplicates_counter_);
    return;
  }
  if (seq_num == state.contiguous + 1) {
    ++state.contiguous;
    // Absorb any out-of-order deliveries that are now contiguous.
    while (!state.beyond.empty() &&
           *state.beyond.begin() == state.contiguous + 1) {
      ++state.contiguous;
      state.beyond.erase(state.beyond.begin());
    }
  } else {
    state.beyond.insert(seq_num);
  }

  ++stats_.delivered;
  Message unwrapped;
  unwrapped.from = message.from;
  unwrapped.to = id_;
  unwrapped.type = *type;
  unwrapped.payload = message.payload.At("payload");
  inner_->OnMessage(unwrapped);
}

void ReliableChannel::HandleAck(const Message& message) {
  auto seq = message.payload.GetInt("seq");
  auto epoch = message.payload.GetInt("epoch");
  if (!seq.ok() || !epoch.ok()) return;
  if (*epoch != epoch_) return;  // ack for a previous incarnation
  auto it = pending_.find(
      std::make_pair(message.from, static_cast<uint64_t>(*seq)));
  if (it == pending_.end()) return;  // duplicate ack
  pending_.erase(it);
  ++stats_.acks_received;
  metrics::Inc(acks_counter_);
}

void ReliableChannel::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    retries_counter_ = acks_counter_ = acks_sent_counter_ =
        duplicates_counter_ = gave_up_counter_ = nullptr;
    return;
  }
  retries_counter_ = registry->GetCounter("net.retries");
  acks_counter_ = registry->GetCounter("net.acks");
  acks_sent_counter_ = registry->GetCounter("net.acks_sent");
  duplicates_counter_ = registry->GetCounter("net.duplicates");
  gave_up_counter_ = registry->GetCounter("net.gave_up");
}

}  // namespace medsync::net
