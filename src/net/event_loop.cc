#include "net/event_loop.h"

#include <poll.h>

#include <algorithm>

namespace medsync::net {

void EventLoop::Schedule(Micros delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  timers_.push(Timer{Now() + delay, next_seq_++, std::move(fn)});
}

void EventLoop::WatchFd(int fd, bool want_read, bool want_write,
                        FdCallback cb) {
  fds_[fd] = Watch{want_read, want_write, std::move(cb)};
}

void EventLoop::UpdateFd(int fd, bool want_read, bool want_write) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void EventLoop::UnwatchFd(int fd) { fds_.erase(fd); }

size_t EventLoop::RunDueTimers() {
  // Only timers due at entry run this pass; a timer that schedules another
  // zero-delay timer yields to poll() first, so fd events starve neither
  // (same fairness shape as the simulator's FIFO tie-break).
  const Micros now = Now();
  size_t ran = 0;
  while (!timers_.empty() && timers_.top().when <= now) {
    // pop() before invoking: the callback may push new timers.
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
    ++ran;
  }
  return ran;
}

size_t EventLoop::RunOnce(Micros max_wait) {
  Micros wait = std::max<Micros>(0, max_wait);
  if (!timers_.empty()) {
    const Micros until_timer = timers_.top().when - Now();
    wait = std::min(wait, std::max<Micros>(0, until_timer));
  }

  std::vector<struct pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, watch] : fds_) {
    short events = 0;
    if (watch.want_read) events |= POLLIN;
    if (watch.want_write) events |= POLLOUT;
    pfds.push_back(pollfd{fd, events, 0});
  }

  // Round up so a sub-millisecond timer deadline sleeps ~1ms instead of
  // busy-spinning poll(timeout=0) until the deadline passes.
  const int timeout_ms = static_cast<int>(std::min<Micros>(
      (wait + kMicrosPerMilli - 1) / kMicrosPerMilli, 60 * 1000));
  const int ready = ::poll(pfds.empty() ? nullptr : pfds.data(),
                           static_cast<nfds_t>(pfds.size()), timeout_ms);

  size_t dispatched = 0;
  if (ready > 0) {
    for (const auto& pfd : pfds) {
      if (pfd.revents == 0) continue;
      // Re-resolve: an earlier callback this iteration may have unwatched
      // (and closed) this fd — or even reused the number for a new watch;
      // delivering stale revents to a new watch is harmless (callbacks
      // handle EAGAIN), delivering to a dead one is not.
      auto it = fds_.find(pfd.fd);
      if (it == fds_.end()) continue;
      uint32_t events = 0;
      if (pfd.revents & POLLIN) events |= kReadable;
      if (pfd.revents & POLLOUT) events |= kWritable;
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      if (events == 0) continue;
      // Copy the callback: it may UnwatchFd(itself) mid-flight.
      FdCallback cb = it->second.cb;
      cb(events);
      ++dispatched;
    }
  }

  dispatched += RunDueTimers();
  return dispatched;
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_ && (!fds_.empty() || !timers_.empty())) {
    RunOnce(60 * kMicrosPerSecond);
  }
}

}  // namespace medsync::net
