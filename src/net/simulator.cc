#include "net/simulator.h"

#include <utility>

namespace medsync::net {

void Simulator::Schedule(Micros delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  ScheduleAt(clock_.Now() + delay, std::move(fn));
}

void Simulator::ScheduleAt(Micros when, std::function<void()> fn) {
  if (when < clock_.Now()) when = clock_.Now();
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  Event event = queue_.top();
  queue_.pop();
  clock_.AdvanceTo(event.when);
  ++executed_;
  event.fn();
  return true;
}

size_t Simulator::Run() {
  size_t count = 0;
  while (Step()) ++count;
  return count;
}

size_t Simulator::RunUntil(Micros when) {
  size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= when) {
    Step();
    ++count;
  }
  clock_.AdvanceTo(when);
  return count;
}

size_t Simulator::RunFor(Micros duration) {
  return RunUntil(clock_.Now() + duration);
}

}  // namespace medsync::net
