#ifndef MEDSYNC_NET_SCHEDULER_H_
#define MEDSYNC_NET_SCHEDULER_H_

#include <functional>

#include "common/clock.h"

namespace medsync::net {

/// Timer/clock seam between protocol code and its execution plane.
///
/// `ReliableChannel`, `Peer`, and `ChainNode` only ever need "what time is
/// it" and "run this closure after a delay". Expressing that as an
/// interface lets the same protocol objects run unmodified over the
/// discrete-event `Simulator` (deterministic tests, simulated time) or the
/// epoll/poll `EventLoop` (deployment, wall-clock time). Both planes are
/// single-threaded: callbacks never race each other.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Microseconds since the plane's epoch (simulated or wall clock).
  virtual Micros Now() const = 0;

  /// Runs `fn` once, `delay` from now (delay < 0 is clamped to 0).
  virtual void Schedule(Micros delay, std::function<void()> fn) = 0;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_SCHEDULER_H_
