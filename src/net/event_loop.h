#ifndef MEDSYNC_NET_EVENT_LOOP_H_
#define MEDSYNC_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "net/scheduler.h"

namespace medsync::net {

/// Single-threaded poll(2) event loop: the wall-clock counterpart of the
/// discrete-event Simulator. Protocol code (`ReliableChannel`, `Peer`,
/// `ChainNode`) sees it only through the `Scheduler` interface; the fd
/// watching below is for the socket transport.
///
/// Everything — fd callbacks and timers — runs on the thread inside Run(),
/// so callbacks never race, exactly like simulator events. Timers at equal
/// deadlines fire in scheduling order (FIFO tie-break, mirroring the
/// simulator's determinism discipline even though wall time itself is not
/// deterministic).
class EventLoop : public Scheduler {
 public:
  /// Bitmask handed to fd callbacks.
  enum : uint32_t {
    kReadable = 1u << 0,
    kWritable = 1u << 1,
    kError = 1u << 2,  // POLLERR/POLLHUP/POLLNVAL: read/write to collect errno
  };
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Scheduler:
  Micros Now() const override { return clock_.Now(); }
  void Schedule(Micros delay, std::function<void()> fn) override;

  /// Registers `fd` (already non-blocking). `cb` fires with the readiness
  /// bitmask. Re-watching an fd replaces its registration.
  void WatchFd(int fd, bool want_read, bool want_write, FdCallback cb);

  /// Adjusts readiness interest for a watched fd; unknown fds are ignored.
  void UpdateFd(int fd, bool want_read, bool want_write);

  /// Unregisters `fd`. Safe to call from inside its own callback; the fd's
  /// pending events this iteration are discarded. Does not close the fd.
  void UnwatchFd(int fd);

  /// One poll iteration: wait up to `max_wait` (clamped by the next timer
  /// deadline), dispatch ready fds, run due timers. Returns the number of
  /// callbacks dispatched (0 = idle wait elapsed).
  size_t RunOnce(Micros max_wait);

  /// Runs until Stop(), or until there is nothing left to wait for (no
  /// watched fds and no pending timers).
  void Run();

  /// Makes Run() return after the current iteration. Callable only from
  /// within loop callbacks (the loop is single-threaded by design).
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  size_t pending_timers() const { return timers_.size(); }
  size_t watched_fds() const { return fds_.size(); }

 private:
  struct Timer {
    Micros when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Watch {
    bool want_read = false;
    bool want_write = false;
    FdCallback cb;
  };

  size_t RunDueTimers();

  WallClock clock_;
  std::map<int, Watch> fds_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_EVENT_LOOP_H_
