#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace medsync::net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(
        StrCat("fcntl(O_NONBLOCK): ", std::strerror(errno)));
  }
  return Status::OK();
}

/// Parses "host:port" into a loopback/IPv4 sockaddr.
Status ParseAddress(const std::string& host_port, sockaddr_in* out) {
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        StrCat("address '", host_port, "' is not host:port"));
  }
  const std::string host = host_port.substr(0, colon);
  const int port = std::atoi(host_port.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(
        StrCat("address '", host_port, "' has a bad port"));
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("address '", host_port, "' has a bad IPv4 host"));
  }
  return Status::OK();
}

}  // namespace

SocketTransport::SocketTransport(EventLoop* loop,
                                 SocketTransportOptions options)
    : loop_(loop), options_(std::move(options)) {}

SocketTransport::~SocketTransport() {
  if (listen_fd_ >= 0) {
    loop_->UnwatchFd(listen_fd_);
    ::close(listen_fd_);
  }
  // Collect fds first: CloseConnection mutates connections_.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (int fd : fds) CloseConnection(fd);
}

Status SocketTransport::Listen() {
  sockaddr_in addr;
  MEDSYNC_RETURN_IF_ERROR(ParseAddress(
      StrCat(options_.listen_host, ":",
             options_.listen_port == 0 ? 1 : options_.listen_port),
      &addr));
  addr.sin_port = htons(options_.listen_port);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal(
        StrCat("bind ", options_.listen_host, ":", options_.listen_port, ": ",
               std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    Status status = Status::Internal(StrCat("listen: ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  MEDSYNC_RETURN_IF_ERROR(SetNonBlocking(fd));

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  loop_->WatchFd(fd, /*want_read=*/true, /*want_write=*/false,
                 [this](uint32_t events) { OnListenReady(events); });
  return Status::OK();
}

void SocketTransport::AddRoute(const NodeId& id, const std::string& host_port) {
  options_.routes[id] = host_port;
}

void SocketTransport::Attach(const NodeId& id, Endpoint* endpoint) {
  endpoints_[id] = endpoint;
}

void SocketTransport::Detach(const NodeId& id) { endpoints_.erase(id); }

bool SocketTransport::IsAttached(const NodeId& id) const {
  return endpoints_.count(id) > 0 || options_.routes.count(id) > 0;
}

void SocketTransport::set_metrics(metrics::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    sent_counter_ = delivered_counter_ = dropped_counter_ = bytes_counter_ =
        frame_corrupt_counter_ = nullptr;
    return;
  }
  sent_counter_ = registry->GetCounter("net.sent");
  delivered_counter_ = registry->GetCounter("net.delivered");
  dropped_counter_ = registry->GetCounter("net.dropped");
  bytes_counter_ = registry->GetCounter("net.bytes");
  frame_corrupt_counter_ = registry->GetCounter("net.frame_corrupt");
}

std::vector<NodeId> SocketTransport::AttachedNodes() const {
  std::vector<NodeId> out;
  for (const auto& [id, endpoint] : endpoints_) out.push_back(id);
  for (const auto& [id, address] : options_.routes) {
    if (endpoints_.count(id) == 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status SocketTransport::Send(Message message) {
  const size_t payload_bytes = message.payload.SerializedSize();
  return SendSized(std::move(message), payload_bytes);
}

Status SocketTransport::SendSized(Message message, size_t payload_bytes) {
  if (endpoints_.count(message.to) > 0) {
    // Local delivery stays asynchronous (next loop turn), matching the
    // simulator's invariant that OnMessage never runs inside Send.
    ++stats_.sent;
    stats_.bytes += payload_bytes;
    metrics::Inc(sent_counter_);
    metrics::Inc(bytes_counter_, payload_bytes);
    loop_->Schedule(0, [this, message = std::move(message)]() mutable {
      DeliverLocal(std::move(message));
    });
    return Status::OK();
  }
  auto route = options_.routes.find(message.to);
  if (route == options_.routes.end()) {
    // Nothing was handed to the network, so nothing is accounted
    // (SimNetwork contract).
    return Status::NotFound(
        StrCat("no endpoint '", message.to, "' on the network"));
  }
  ++stats_.sent;
  stats_.bytes += payload_bytes;
  metrics::Inc(sent_counter_);
  metrics::Inc(bytes_counter_, payload_bytes);
  return QueueToAddress(route->second, message, payload_bytes);
}

void SocketTransport::Broadcast(const NodeId& from, const std::string& type,
                                const Json& payload) {
  const size_t payload_bytes = payload.SerializedSize();
  for (const NodeId& id : AttachedNodes()) {
    if (id == from) continue;
    Message message;
    message.from = from;
    message.to = id;
    message.type = type;
    message.payload = payload;
    LogIfError(SendSized(std::move(message), payload_bytes), "net",
               "broadcast delivery");
  }
}

void SocketTransport::DeliverLocal(Message message) {
  auto it = endpoints_.find(message.to);
  if (it == endpoints_.end()) {
    CountDropped(1, "detached mid-flight");
    return;
  }
  ++stats_.delivered;
  metrics::Inc(delivered_counter_);
  it->second->OnMessage(message);
}

Status SocketTransport::QueueToAddress(const std::string& address,
                                       const Message& message,
                                       size_t /*payload_bytes*/) {
  Status status = Status::OK();
  Connection* conn = GetOrConnect(address, &status);
  if (conn == nullptr) {
    // Unresolvable address: message accepted then lost (datagram
    // semantics); ReliableChannel retries above.
    CountDropped(1, status.message().c_str());
    return Status::OK();
  }
  Frame frame;
  frame.type = message.type;
  Json envelope = Json::MakeObject();
  envelope.Set("from", Json(message.from));
  envelope.Set("to", Json(message.to));
  envelope.Set("body", message.payload);
  frame.payload = envelope.Dump();
  conn->outbox.push_back(EncodeFrame(frame));
  if (!conn->connecting) FlushOutbox(conn);
  UpdateInterest(conn);
  return Status::OK();
}

SocketTransport::Connection* SocketTransport::GetOrConnect(
    const std::string& address, Status* status) {
  auto existing = outbound_by_address_.find(address);
  if (existing != outbound_by_address_.end()) {
    return connections_.at(existing->second).get();
  }

  sockaddr_in addr;
  *status = ParseAddress(address, &addr);
  if (!status->ok()) return nullptr;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *status = Status::Internal(StrCat("socket: ", std::strerror(errno)));
    return nullptr;
  }
  *status = SetNonBlocking(fd);
  if (!status->ok()) {
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  bool connecting = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      *status = Status::Internal(
          StrCat("connect ", address, ": ", std::strerror(errno)));
      ::close(fd);
      return nullptr;
    }
    connecting = true;
  }

  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->address = address;
  conn->connecting = connecting;
  Connection* raw = conn.get();
  connections_[fd] = std::move(conn);
  outbound_by_address_[address] = fd;
  loop_->WatchFd(fd, /*want_read=*/true, /*want_write=*/connecting,
                 [this, fd](uint32_t events) { OnConnectionReady(fd, events); });
  return raw;
}

void SocketTransport::OnListenReady(uint32_t /*events*/) {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained. Anything else: log and keep listening.
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        LogIfError(Status::Internal(
                       StrCat("accept: ", std::strerror(errno))),
                   "net", "accept");
      }
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_[fd] = std::move(conn);
    loop_->WatchFd(fd, /*want_read=*/true, /*want_write=*/false,
                   [this, fd](uint32_t events) {
                     OnConnectionReady(fd, events);
                   });
  }
}

void SocketTransport::OnConnectionReady(int fd, uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();

  if (conn->connecting) {
    if (events & (EventLoop::kWritable | EventLoop::kError)) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        CountDropped(conn->outbox.size(),
                     StrCat("connect failed: ", std::strerror(err)).c_str());
        conn->outbox.clear();
        CloseConnection(fd);
        return;
      }
      conn->connecting = false;
      FlushOutbox(conn);
      if (connections_.count(fd) == 0) return;  // flush may close
      UpdateInterest(conn);
    }
    return;
  }

  if (events & (EventLoop::kReadable | EventLoop::kError)) {
    HandleReadable(conn);
    if (connections_.count(fd) == 0) return;  // closed during read
  }
  if (events & EventLoop::kWritable) {
    HandleWritable(conn);
  }
}

void SocketTransport::HandleReadable(Connection* conn) {
  const int fd = conn->fd;
  bool closed_by_peer = false;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed_by_peer = true;  // EOF or hard error
    break;
  }
  // Complete frames decode and deliver even when the stream just ended.
  if (!DrainFrames(conn)) return;  // corrupt stream: connection is gone
  if (closed_by_peer) {
    CountDropped(conn->outbox.size(), "connection closed with queued frames");
    conn->outbox.clear();
    CloseConnection(fd);
  }
}

bool SocketTransport::DrainFrames(Connection* conn) {
  while (true) {
    Result<std::optional<Frame>> frame = conn->decoder.Next();
    if (!frame.ok()) {
      // CRC/framing violation: a desynchronized stream cannot resync, so
      // the whole connection is condemned — no partial message is ever
      // delivered.
      CountCorrupt("frame", frame.status());
      const int fd = conn->fd;
      CountDropped(conn->outbox.size(), "corrupt stream with queued frames");
      conn->outbox.clear();
      CloseConnection(fd);
      return false;
    }
    if (!frame.value().has_value()) return true;
    Frame f = std::move(*frame.value());
    Result<Json> envelope = Json::ParseWire(
        f.payload,
        Json::ParseLimits{
            .max_depth = static_cast<int>(options_.max_wire_json_depth)});
    const bool envelope_ok = envelope.ok() &&
                             envelope.value().At("from").is_string() &&
                             envelope.value().At("to").is_string();
    if (!envelope_ok) {
      CountCorrupt("envelope", envelope.ok()
                                   ? Status::Corruption(
                                         "envelope missing from/to")
                                   : envelope.status());
      const int fd = conn->fd;
      CountDropped(conn->outbox.size(), "corrupt stream with queued frames");
      conn->outbox.clear();
      CloseConnection(fd);
      return false;
    }
    const Json& env = envelope.value();
    Message message;
    message.type = std::move(f.type);
    message.from = env.At("from").AsString();
    message.to = env.At("to").AsString();
    message.payload = env.At("body");
    DeliverLocal(std::move(message));
  }
}

void SocketTransport::HandleWritable(Connection* conn) {
  FlushOutbox(conn);
  if (connections_.count(conn->fd) > 0) UpdateInterest(conn);
}

void SocketTransport::FlushOutbox(Connection* conn) {
  while (!conn->outbox.empty()) {
    const std::string& front = conn->outbox.front();
    const char* data = front.data() + conn->outbox_offset;
    const size_t remaining = front.size() - conn->outbox_offset;
    const ssize_t n = ::write(conn->fd, data, remaining);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      const int fd = conn->fd;
      CountDropped(conn->outbox.size(),
                   StrCat("write: ", std::strerror(errno)).c_str());
      conn->outbox.clear();
      CloseConnection(fd);
      return;
    }
    conn->outbox_offset += static_cast<size_t>(n);
    if (conn->outbox_offset == front.size()) {
      conn->outbox.erase(conn->outbox.begin());
      conn->outbox_offset = 0;
    }
  }
}

void SocketTransport::UpdateInterest(Connection* conn) {
  loop_->UpdateFd(conn->fd, /*want_read=*/true,
                  /*want_write=*/conn->connecting || !conn->outbox.empty());
}

void SocketTransport::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (!it->second->address.empty()) {
    outbound_by_address_.erase(it->second->address);
  }
  loop_->UnwatchFd(fd);
  ::close(fd);
  connections_.erase(it);
}

void SocketTransport::CountDropped(uint64_t n, const char* reason) {
  if (n == 0) return;
  stats_.dropped += n;
  metrics::Inc(dropped_counter_, n);
  LogIfError(Status::Unavailable(StrCat("dropped ", n, " frame(s): ", reason)),
             "net", "socket transport");
}

void SocketTransport::CountCorrupt(const char* what, const Status& status) {
  ++frame_corrupt_;
  metrics::Inc(frame_corrupt_counter_);
  LogIfError(status, "net", StrCat("corrupt ", what, " on wire").c_str());
}

}  // namespace medsync::net
