#ifndef MEDSYNC_NET_NETWORK_H_
#define MEDSYNC_NET_NETWORK_H_

#include <map>
#include <set>
#include <string>

#include "common/json.h"
#include "common/metrics/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "net/simulator.h"

namespace medsync::net {

/// Stable node identity on the simulated network (e.g. "doctor",
/// "chain-node-2").
using NodeId = std::string;

/// One network message. `type` routes within the receiver ("tx", "block",
/// "notify", "fetch_request", "fetch_response", ...); `payload` is JSON,
/// mirroring how the real system would put JSON bodies on the wire.
struct Message {
  NodeId from;
  NodeId to;
  std::string type;
  Json payload;
};

/// Receiver interface for attached nodes.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnMessage(const Message& message) = 0;
};

/// Per-message latency: base + uniform(0, jitter).
struct LatencyModel {
  Micros base = 20 * kMicrosPerMilli;
  Micros jitter = 10 * kMicrosPerMilli;
};

/// A simulated peer-to-peer message network. Delivery is asynchronous via
/// the Simulator with configurable latency, optional random drops, and
/// per-link partitions — enough to exercise the failure paths of the
/// sharing protocol (a partitioned peer missing a contract notification
/// must catch up when the partition heals).
class Network {
 public:
  Network(Simulator* simulator, LatencyModel latency, uint64_t seed = 42);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches `endpoint` as `id`. The endpoint must outlive its attachment.
  void Attach(const NodeId& id, Endpoint* endpoint);
  void Detach(const NodeId& id);
  bool IsAttached(const NodeId& id) const;

  /// Queues `message` for delivery. Fails fast if the destination is
  /// unknown; silently drops (counting it) if the link is partitioned or
  /// the drop lottery fires — like a real datagram network would.
  Status Send(Message message);

  /// Sends `type`/`payload` from `from` to every other attached node.
  void Broadcast(const NodeId& from, const std::string& type,
                 const Json& payload);

  /// Cuts or heals the (bidirectional) link between `a` and `b`.
  void SetLinkDown(const NodeId& a, const NodeId& b, bool down);

  /// Probability in [0,1] that any message is lost.
  void set_drop_probability(double p) { drop_probability_ = p; }

  /// `sent`/`bytes` only count messages genuinely handed to the network —
  /// a Send to an unknown endpoint fails fast WITHOUT being accounted.
  /// Messages lost to a down link, the drop lottery, or a mid-flight detach
  /// count as both sent and dropped (datagram semantics).
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t bytes = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Mirrors Stats into `registry` (net.sent/delivered/dropped/bytes), adds
  /// lazily created per-message-type counters (net.sent.<type>,
  /// net.dropped.<type>) and the sampled-delay histogram net.latency_us.
  /// The registry must outlive the network; nullptr detaches.
  void set_metrics(metrics::MetricsRegistry* registry);

  std::vector<NodeId> AttachedNodes() const;

 private:
  /// Send with the payload's serialized size precomputed, so Broadcast
  /// serializes (well, measures) each payload once, not once per receiver.
  Status SendSized(Message message, size_t payload_bytes);

  Simulator* simulator_;
  LatencyModel latency_;
  Rng rng_;
  double drop_probability_ = 0.0;
  std::map<NodeId, Endpoint*> endpoints_;
  std::set<std::pair<NodeId, NodeId>> down_links_;  // normalized (min,max)
  Stats stats_;

  metrics::MetricsRegistry* registry_ = nullptr;
  metrics::Counter* sent_counter_ = nullptr;
  metrics::Counter* delivered_counter_ = nullptr;
  metrics::Counter* dropped_counter_ = nullptr;
  metrics::Counter* bytes_counter_ = nullptr;
  metrics::Histogram* latency_us_ = nullptr;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_NETWORK_H_
