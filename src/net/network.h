#ifndef MEDSYNC_NET_NETWORK_H_
#define MEDSYNC_NET_NETWORK_H_

#include <map>
#include <set>
#include <string>

#include "common/json.h"
#include "common/random.h"
#include "common/status.h"
#include "net/simulator.h"

namespace medsync::net {

/// Stable node identity on the simulated network (e.g. "doctor",
/// "chain-node-2").
using NodeId = std::string;

/// One network message. `type` routes within the receiver ("tx", "block",
/// "notify", "fetch_request", "fetch_response", ...); `payload` is JSON,
/// mirroring how the real system would put JSON bodies on the wire.
struct Message {
  NodeId from;
  NodeId to;
  std::string type;
  Json payload;
};

/// Receiver interface for attached nodes.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnMessage(const Message& message) = 0;
};

/// Per-message latency: base + uniform(0, jitter).
struct LatencyModel {
  Micros base = 20 * kMicrosPerMilli;
  Micros jitter = 10 * kMicrosPerMilli;
};

/// A simulated peer-to-peer message network. Delivery is asynchronous via
/// the Simulator with configurable latency, optional random drops, and
/// per-link partitions — enough to exercise the failure paths of the
/// sharing protocol (a partitioned peer missing a contract notification
/// must catch up when the partition heals).
class Network {
 public:
  Network(Simulator* simulator, LatencyModel latency, uint64_t seed = 42);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches `endpoint` as `id`. The endpoint must outlive its attachment.
  void Attach(const NodeId& id, Endpoint* endpoint);
  void Detach(const NodeId& id);
  bool IsAttached(const NodeId& id) const;

  /// Queues `message` for delivery. Fails fast if the destination is
  /// unknown; silently drops (counting it) if the link is partitioned or
  /// the drop lottery fires — like a real datagram network would.
  Status Send(Message message);

  /// Sends `type`/`payload` from `from` to every other attached node.
  void Broadcast(const NodeId& from, const std::string& type,
                 const Json& payload);

  /// Cuts or heals the (bidirectional) link between `a` and `b`.
  void SetLinkDown(const NodeId& a, const NodeId& b, bool down);

  /// Probability in [0,1] that any message is lost.
  void set_drop_probability(double p) { drop_probability_ = p; }

  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t bytes = 0;
  };
  const Stats& stats() const { return stats_; }

  std::vector<NodeId> AttachedNodes() const;

 private:
  Simulator* simulator_;
  LatencyModel latency_;
  Rng rng_;
  double drop_probability_ = 0.0;
  std::map<NodeId, Endpoint*> endpoints_;
  std::set<std::pair<NodeId, NodeId>> down_links_;  // normalized (min,max)
  Stats stats_;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_NETWORK_H_
