#ifndef MEDSYNC_NET_NETWORK_H_
#define MEDSYNC_NET_NETWORK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "net/simulator.h"

namespace medsync::net {

/// Stable node identity on the network (e.g. "doctor", "chain-node-2").
using NodeId = std::string;

/// One network message. `type` routes within the receiver ("tx", "block",
/// "notify", "fetch_request", "fetch_response", ...); `payload` is JSON,
/// mirroring how the real system puts JSON bodies on the wire.
struct Message {
  NodeId from;
  NodeId to;
  std::string type;
  Json payload;
};

/// Receiver interface for attached nodes.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnMessage(const Message& message) = 0;
};

/// Datagram-style message plane the protocol layer runs over.
///
/// Two implementations share this contract: `SimNetwork` (below) delivers
/// through the discrete-event Simulator for deterministic tests, and
/// `SocketTransport` (net/socket_transport.h) moves the same messages over
/// framed non-blocking TCP for multi-process deployment. `ReliableChannel`,
/// `Peer`, and `ChainNode` only ever see this interface, so they run
/// unmodified over either plane.
///
/// Contract both implementations keep:
///  - `Send` to an id nobody can resolve fails fast with NotFound and is
///    NOT accounted in stats (nothing was handed to the network).
///  - A message accepted by `Send` may still be lost (partition, drop
///    lottery, broken connection, mid-flight detach); loss is silent and
///    counts as sent + dropped. Reliability is `ReliableChannel`'s job.
class Network {
 public:
  /// `sent`/`bytes` only count messages genuinely handed to the network.
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t bytes = 0;
  };

  virtual ~Network() = default;

  /// Attaches `endpoint` as `id`. The endpoint must outlive its attachment.
  virtual void Attach(const NodeId& id, Endpoint* endpoint) = 0;
  virtual void Detach(const NodeId& id) = 0;

  /// Whether `id` is resolvable from here: locally attached, or (for the
  /// socket transport) reachable through the static route map.
  virtual bool IsAttached(const NodeId& id) const = 0;

  /// Queues `message` for delivery (see class contract for loss semantics).
  virtual Status Send(Message message) = 0;

  /// Sends `type`/`payload` from `from` to every other known node.
  virtual void Broadcast(const NodeId& from, const std::string& type,
                         const Json& payload) = 0;

  virtual const Stats& stats() const = 0;

  /// Mirrors Stats into `registry` (net.sent/delivered/dropped/bytes) plus
  /// implementation-specific extras. The registry must outlive the network;
  /// nullptr detaches.
  virtual void set_metrics(metrics::MetricsRegistry* registry) = 0;

  /// Every id resolvable from this plane (local and, for the socket
  /// transport, routed), sorted.
  virtual std::vector<NodeId> AttachedNodes() const = 0;
};

/// Per-message latency: base + uniform(0, jitter).
struct LatencyModel {
  Micros base = 20 * kMicrosPerMilli;
  Micros jitter = 10 * kMicrosPerMilli;
};

/// The simulated peer-to-peer network. Delivery is asynchronous via the
/// Simulator with configurable latency, optional random drops, and per-link
/// partitions — enough to exercise the failure paths of the sharing
/// protocol (a partitioned peer missing a contract notification must catch
/// up when the partition heals).
class SimNetwork final : public Network {
 public:
  SimNetwork(Simulator* simulator, LatencyModel latency, uint64_t seed = 42);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  void Attach(const NodeId& id, Endpoint* endpoint) override;
  void Detach(const NodeId& id) override;
  bool IsAttached(const NodeId& id) const override;

  /// Queues `message` for delivery. Fails fast if the destination is
  /// unknown; silently drops (counting it) if the link is partitioned or
  /// the drop lottery fires — like a real datagram network would.
  Status Send(Message message) override;

  void Broadcast(const NodeId& from, const std::string& type,
                 const Json& payload) override;

  /// Cuts or heals the (bidirectional) link between `a` and `b`.
  void SetLinkDown(const NodeId& a, const NodeId& b, bool down);

  /// Probability in [0,1] that any message is lost.
  void set_drop_probability(double p) { drop_probability_ = p; }

  /// Messages lost to a down link, the drop lottery, or a mid-flight detach
  /// count as both sent and dropped (datagram semantics).
  const Stats& stats() const override { return stats_; }

  /// Beyond the base counters, adds lazily created per-message-type
  /// counters (net.sent.<type>, net.dropped.<type>) and the sampled-delay
  /// histogram net.latency_us.
  void set_metrics(metrics::MetricsRegistry* registry) override;

  std::vector<NodeId> AttachedNodes() const override;

 private:
  /// Send with the payload's serialized size precomputed, so Broadcast
  /// serializes (well, measures) each payload once, not once per receiver.
  Status SendSized(Message message, size_t payload_bytes);

  Simulator* simulator_;
  LatencyModel latency_;
  Rng rng_;
  double drop_probability_ = 0.0;
  std::map<NodeId, Endpoint*> endpoints_;
  std::set<std::pair<NodeId, NodeId>> down_links_;  // normalized (min,max)
  Stats stats_;

  metrics::MetricsRegistry* registry_ = nullptr;
  metrics::Counter* sent_counter_ = nullptr;
  metrics::Counter* delivered_counter_ = nullptr;
  metrics::Counter* dropped_counter_ = nullptr;
  metrics::Counter* bytes_counter_ = nullptr;
  metrics::Histogram* latency_us_ = nullptr;
};

}  // namespace medsync::net

#endif  // MEDSYNC_NET_NETWORK_H_
