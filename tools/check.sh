#!/usr/bin/env bash
# One-shot correctness gate (DESIGN.md section 12):
#   1. configure with thread-safety analysis + exported compile commands
#   2. build (clang: -Werror=thread-safety; gcc: annotations are no-ops)
#   3. medsync-lint over the tree + its self-test
#   4. medsync-sca: the whole-program analyzer (MS101 lock-order,
#      MS102 determinism-flow, MS103 event-loop-blocking, MS104
#      status-leak) + its fixture self-test. Uses libclang when
#      available, else the built-in frontend — the rules run either way.
#   5. clang-tidy ratchet against tools/clang_tidy_baseline.txt (skips
#      with a warning when clang-tidy is absent; CI runs it --require'd)
#   6. tier-1 ctest
#   7. sharded-lane suite (`ctest -L lanes`, quick legs; the heavy
#      lane-determinism soak leg carries both labels and rides in --full)
#   8. columnar storage suite (`ctest -L storage`: chunk format + LZ codec,
#      chunked-vs-row equivalence properties, million-row
#      seal/scan/checkpoint/recover — DESIGN.md section 15)
#   9. loopback deployment smoke: build chain_node_daemon and drive the
#      four-process Fig. 5 cascade over real TCP to convergence, checking
#      that every process reports the same protocol outcome (DESIGN.md
#      section 16)
#
# Usage: tools/check.sh [build-dir]          (default: build-check)
#        tools/check.sh --lint-only [dir]    lint stages only
#        tools/check.sh --full [dir]         also run the `soak` label
#                                            (generated 100-peer networks,
#                                            ~3 min serial; see DESIGN.md
#                                            section 13)
#
# Registered with ctest as `check_gate` (label `lint`) in --lint-only mode:
# inside a ctest run the configure/build/test stages are already the
# enclosing run, so only the lint stages add coverage there. The full gate
# is for pre-push use.
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_ONLY=0
FULL=0
if [[ "${1:-}" == "--lint-only" ]]; then
  LINT_ONLY=1
  shift
elif [[ "${1:-}" == "--full" ]]; then
  FULL=1
  shift
fi
BUILD_DIR="${1:-build-check}"

if [[ "$LINT_ONLY" == 0 ]]; then
  echo "== [1/9] configure ($BUILD_DIR) =="
  cmake -B "$BUILD_DIR" -S . \
    -DMEDSYNC_THREAD_SAFETY_ANALYSIS=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  echo "== [2/9] build =="
  cmake --build "$BUILD_DIR" -j"$(nproc)"
fi

echo "== [3/9] medsync-lint =="
python3 tools/medsync_lint.py
python3 tools/medsync_lint_test.py

echo "== [4/9] medsync-sca (MS101-MS104 whole-program analysis) =="
python3 tools/medsync_sca.py --build-dir "$BUILD_DIR"
python3 tools/medsync_sca_test.py

echo "== [5/9] clang-tidy ratchet =="
python3 tools/clang_tidy_ratchet.py --build-dir "$BUILD_DIR"

if [[ "$LINT_ONLY" == 0 ]]; then
  echo "== [6/9] tier-1 ctest =="
  # -LE lint: the lint stages just ran above; also keeps the registered
  # check_gate test from re-entering this script. The generated soak suite
  # (label `soak`) is excluded from the default tier and included by
  # --full.
  EXCLUDE='lint|soak'
  if [[ "$FULL" == 1 ]]; then
    EXCLUDE='lint'
  fi
  ctest --test-dir "$BUILD_DIR" --output-on-failure -LE "$EXCLUDE" \
    -j"$(nproc)"
  echo "== [7/9] sharded-lane suite (ctest -L lanes) =="
  # Quick legs only by default; --full already covered the soak-labeled
  # lane-determinism leg in stage 6, so always exclude `soak` here.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L lanes -LE soak \
    -j"$(nproc)"
  echo "== [8/9] columnar storage suite (ctest -L storage) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L storage -LE soak \
    -j"$(nproc)"
  echo "== [9/9] loopback deployment smoke (4 processes over TCP) =="
  cmake --build "$BUILD_DIR" --target chain_node_daemon -j"$(nproc)"
  tools/run_loopback_cascade.sh "$BUILD_DIR"
fi

echo "check.sh: all gates passed"
