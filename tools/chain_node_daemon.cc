// One clinic-deployment member as an OS process: an EventLoop, a
// SocketTransport, and a ClinicDaemon (chain node + role peer) on top.
// Four processes — doctor, patient, researcher, observer — run the Fig. 5
// update cascade over real loopback TCP and each write a JSON report whose
// "compare" block must agree across processes AND with a simulated run of
// the same code (tools/run_loopback_cascade.sh checks both).
//
//   chain_node_daemon --role=doctor --port-base=21500 \
//       [--host=127.0.0.1] [--block-interval-ms=200] [--tick-interval-ms=20]
//       [--timeout-s=60] [--linger-ms=N] [--report=/path/report.json]
//
// Every process derives the full address map from --port-base: the process
// playing role index i (doctor 0, patient 1, researcher 2, observer 3)
// listens on port-base+i, so the route map needs no per-id flags. Exits 0
// on convergence, 1 on failure/timeout.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "core/daemon.h"
#include "net/event_loop.h"
#include "net/socket_transport.h"

namespace {

using medsync::Json;
using medsync::kMicrosPerMilli;
using medsync::kMicrosPerSecond;
using medsync::Micros;
using medsync::Result;
using medsync::StrCat;
using medsync::core::ClinicDaemon;
using medsync::core::ClinicDaemonOptions;
using medsync::core::ClinicRole;

struct Flags {
  std::string role;
  std::string host = "127.0.0.1";
  int port_base = 0;
  int block_interval_ms = 200;
  int tick_interval_ms = 20;
  int timeout_s = 60;
  /// How long to keep serving after local convergence, so slower processes
  /// can still seal and fetch through us (two block intervals by default).
  int linger_ms = -1;
  std::string report_path;
};

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atoi(arg + len + 1);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --role=doctor|patient|researcher|observer"
               " --port-base=N [--host=H] [--block-interval-ms=N]"
               " [--tick-interval-ms=N] [--timeout-s=N] [--linger-ms=N]"
               " [--report=PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseStringFlag(arg, "--role", &flags.role) ||
        ParseStringFlag(arg, "--host", &flags.host) ||
        ParseStringFlag(arg, "--report", &flags.report_path) ||
        ParseIntFlag(arg, "--port-base", &flags.port_base) ||
        ParseIntFlag(arg, "--block-interval-ms", &flags.block_interval_ms) ||
        ParseIntFlag(arg, "--tick-interval-ms", &flags.tick_interval_ms) ||
        ParseIntFlag(arg, "--timeout-s", &flags.timeout_s) ||
        ParseIntFlag(arg, "--linger-ms", &flags.linger_ms)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg);
    return Usage(argv[0]);
  }
  Result<ClinicRole> role = medsync::core::ParseClinicRole(flags.role);
  if (!role.ok() || flags.port_base <= 0 || flags.port_base > 65500) {
    return Usage(argv[0]);
  }
  if (flags.linger_ms < 0) flags.linger_ms = 2 * flags.block_interval_ms;

  medsync::net::EventLoop loop;

  medsync::net::SocketTransportOptions net_options;
  net_options.listen_host = flags.host;
  net_options.listen_port = static_cast<uint16_t>(
      flags.port_base + ClinicDaemon::NodeIndexFor(*role));
  for (ClinicRole other :
       {ClinicRole::kDoctor, ClinicRole::kPatient, ClinicRole::kResearcher,
        ClinicRole::kObserver}) {
    if (other == *role) continue;
    const std::string address = StrCat(
        flags.host, ":", flags.port_base + ClinicDaemon::NodeIndexFor(other));
    for (const std::string& id : ClinicDaemon::LocalIds(other)) {
      net_options.routes[id] = address;
    }
  }
  medsync::net::SocketTransport transport(&loop, std::move(net_options));
  if (medsync::Status status = transport.Listen(); !status.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", status.ToString().c_str());
    return 1;
  }

  ClinicDaemonOptions options;
  options.role = *role;
  options.block_interval = Micros{flags.block_interval_ms} * kMicrosPerMilli;
  options.tick_interval = Micros{flags.tick_interval_ms} * kMicrosPerMilli;
  options.timeout = Micros{flags.timeout_s} * kMicrosPerSecond;
  auto daemon = ClinicDaemon::Create(options, &loop, &transport);
  if (!daemon.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }
  transport.set_metrics(&(*daemon)->metrics());
  (*daemon)->Start();

  // Drive the loop until convergence (plus a linger so slower peers can
  // still catch up through this process), failure, or timeout.
  const Micros poll = Micros{flags.tick_interval_ms} * kMicrosPerMilli;
  Micros linger_until = 0;
  while (true) {
    loop.RunOnce(poll);
    if ((*daemon)->failed()) break;
    if ((*daemon)->converged()) {
      if (linger_until == 0) {
        linger_until = loop.Now() + Micros{flags.linger_ms} * kMicrosPerMilli;
      } else if (loop.Now() >= linger_until) {
        break;
      }
    }
  }

  Json report = (*daemon)->Report();
  const std::string rendered = report.DumpPretty();
  if (!flags.report_path.empty()) {
    std::FILE* out = std::fopen(flags.report_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.report_path.c_str());
      return 1;
    }
    std::fwrite(rendered.data(), 1, rendered.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  } else {
    std::printf("%s\n", rendered.c_str());
  }

  if ((*daemon)->failed()) {
    std::fprintf(stderr, "%s failed: %s\n", flags.role.c_str(),
                 (*daemon)->failure().ToString().c_str());
    return 1;
  }
  return 0;
}
