#!/usr/bin/env python3
"""medsync-lint: repo-specific invariant linter.

Machine-checks the contracts the compiler cannot see (DESIGN.md section 12):

  MS001 raw-thread      std::thread / std::jthread / std::async outside
                        src/common/threading/. All concurrency goes through
                        ThreadPool so the TSan suite and the determinism
                        tests cover every spawn site.
  MS002 wall-clock      Wall-clock or libc randomness (std::chrono::
                        system_clock, time(), rand(), ...) outside
                        src/common/clock.* / src/common/random.*. The
                        simulation is deterministic by contract: all time
                        comes from SimClock, all randomness from
                        DeterministicRng.
  MS003 durability      fwrite()/rename() in a file that is not on the
                        durability allowlist (tools/durability_allowlist.txt).
                        Files on the list have been audited to fsync before
                        rename / at commit points; anywhere else a bare
                        rename is a torn-write waiting for a crash.
  MS004 test-labels     A test that spawns a ThreadPool must carry the ctest
                        label `tsan` (so `ctest -L tsan` under
                        -DMEDSYNC_SANITIZE=thread covers it); a test that
                        touches FaultInjector must carry `fault`.
  MS005 status-discard  `(void)` cast of a call expression. Status/Result<T>
                        are [[nodiscard]]; the one sanctioned discard idiom
                        is IgnoreStatusForTest() (grep-able, test-only).
                        `(void)variable;` assert-guards stay legal.
  MS006 peer-fleet      A test that hand-rolls a peer fleet (more than three
                        direct Peer constructions, or a Peer constructed in
                        a loop). Multi-peer worlds come from the seeded
                        generator (core::GeneratedScenario, DESIGN.md
                        section 13) so seeds, adversity schedules, and the
                        soak oracles apply.
  MS007 direct-chain    Direct chain::Blockchain construction outside the
                        chain layer itself (src/chain/), its owner
                        (src/runtime/), their unit tests (tests/chain_*),
                        and the chain-core microbench. Everything else goes
                        through runtime::ChainNode so transactions get a
                        lane assignment (DESIGN.md section 14) — a bare
                        Blockchain silently bypasses sharding.
  MS008 direct-rows     Direct access to Table's two-tier physical layout
                        outside the storage layer: a range-for over
                        .head(), any .chunks()/.tombstones()/.dead_count()
                        call, or a resurrected rows_ member. Rows live
                        split across a mutable head and sealed columnar
                        chunks (DESIGN.md section 15); only table.scan()
                        merges the tiers and skips dead chunk rows, so any
                        other iteration silently drops or duplicates rows.
                        Allowed in src/relational/ itself, its tests
                        (tests/relational_*), and the storage microbench.
  MS009 raw-socket      Raw socket/event syscalls (socket, connect, bind,
                        listen, accept, epoll_*, poll, select, recv*,
                        send*, get/setsockopt, shutdown) or raw fd I/O
                        (read, write, readv, ...) in src/ outside src/net/.
                        All wire I/O goes through net::SocketTransport /
                        net::EventLoop (DESIGN.md section 16) so framing,
                        CRC checks, corruption accounting, and the
                        simulator/socket seam stay in one place. The
                        durability-allowlisted files keep their audited
                        read/write file I/O; tests may open raw sockets to
                        attack the transport from outside.

Usage:
  tools/medsync_lint.py [--root REPO_ROOT]

Exits non-zero if any finding is reported. The self-test
(tools/medsync_lint_test.py) feeds fixture files violating each rule and
asserts the right rule id fires, plus a clean run on the real tree.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, NamedTuple, Optional, Set


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# Source preprocessing: blank out comments and string literals (preserving
# newlines) so rules only match real code.
# ---------------------------------------------------------------------------

_LEXER = re.compile(
    r"""
      //(?:[^\n]*\\\n)*[^\n]*             # line comment (+ \-continuations)
    | /\*.*?\*/                           # block comment
    | R"(?P<rsdelim>[^()\s\\]{0,16})\(    # raw string literal: R"delim( ...
        .*?
      \)(?P=rsdelim)"                     # ... )delim" — no escapes inside
    | "(?:\\.|[^"\\\n])*"                 # string literal
    | '(?:\\.|[^'\\\n])*'                 # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_code(text: str) -> str:
    """Replaces comments and literal contents with spaces, keeping newlines."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _LEXER.sub(blank, text)


# ---------------------------------------------------------------------------
# Rules MS001/MS002/MS003/MS005: per-file pattern checks.
# ---------------------------------------------------------------------------

MS001_PATTERN = re.compile(r"\bstd::(thread|jthread|async)\b")
MS001_ALLOWED_PREFIXES = ("src/common/threading/",)

MS002_PATTERNS = [
    re.compile(r"\bstd::chrono::system_clock\b"),
    re.compile(r"(?<![A-Za-z0-9_:.>])s?rand\s*\("),
    re.compile(r"(?<![A-Za-z0-9_:.>])time\s*\("),
    re.compile(r"\b(gettimeofday|clock_gettime|localtime|gmtime)\s*\("),
]
MS002_ALLOWED_FILES = (
    "src/common/clock.h",
    "src/common/clock.cc",
    "src/common/random.h",
    "src/common/random.cc",
)

MS003_PATTERN = re.compile(r"(?<![A-Za-z0-9_])((?:std::|::)?(?:fwrite|rename))\s*\(")

# `(void)` followed by something that is called: (void)Foo(...),
# (void)obj.Method(...), (void)ns::Fn(...), (void)ptr->Call(...).
MS005_PATTERN = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][A-Za-z0-9_:.]*(?:->[A-Za-z0-9_:.]+)*\s*\(")

# Direct Blockchain construction: a stack/member object (`Blockchain x(...)`
# or `Blockchain x{...}`), make_unique, or new. Accessors returning
# `Blockchain&` and member declarations without an initializer don't match.
MS007_PATTERN = re.compile(
    r"\b(?:chain::)?Blockchain\s+[A-Za-z_][A-Za-z0-9_]*\s*[({]"
    r"|\bmake_unique<\s*(?:chain::)?Blockchain\b"
    r"|\bnew\s+(?:chain::)?Blockchain\b")
MS007_ALLOWED_PREFIXES = (
    "src/chain/",          # the layer being constructed
    "src/runtime/",        # ChainNode owns the per-lane chains
    "tests/chain_",        # chain-layer unit tests
    "bench/bench_chain_",  # chain-core microbench (raw-layer by design)
)

# Two-tier layout bypass. `.head()` fires only as a range-for target because
# chain::Blockchain::head() is a legitimate, unrelated accessor; the other
# storage accessors and the rows_ member are unambiguous.
MS008_RANGE_FOR_HEAD = re.compile(
    r"for\s*\([^;{]*:\s*[^;{]*(?:\.|->)\s*head\s*\(\s*\)")
MS008_PATTERN = re.compile(
    r"(?:\.|->)\s*(?:chunks|tombstones|dead_count)\s*\(\s*\)|\brows_\b")
MS008_ALLOWED_PREFIXES = (
    "src/relational/",     # the storage layer itself
    "tests/relational_",   # storage-layer unit/property/scale tests
    "bench/bench_storage", # storage microbench inspects layout by design
)

# Raw network syscalls (sockets, epoll/poll multiplexing) and raw fd I/O.
# The lookbehind excludes member calls (`conn.send(`, `stream->read(`) and
# qualified names (`fs::read(`); an explicitly global-namespace `::read(` is
# still the syscall and still matches (the `::` is part of the match, so the
# lookbehind sees whatever precedes it).
MS009_SOCKET_PATTERN = re.compile(
    r"(?<![A-Za-z0-9_.>:])((?:::)?(?:"
    r"socket|connect|bind|listen|accept4?|shutdown"
    r"|epoll_(?:create1?|ctl|wait|pwait)|poll|ppoll|select|pselect"
    r"|recv(?:from|msg)?|send(?:to|msg)?|[gs]etsockopt"
    r"))\s*\(")
MS009_IO_PATTERN = re.compile(
    r"(?<![A-Za-z0-9_.>:])((?:::)?(?:"
    r"p?read|p?write|readv|writev"
    r"))\s*\(")
MS009_ALLOWED_PREFIXES = ("src/net/",)


def _path_allowed(rel: str, prefixes) -> bool:
    return any(rel.startswith(p) for p in prefixes)


def lint_file(path: pathlib.Path, rel: str,
              durability_allowlist: Set[str]) -> List[Finding]:
    """Lints one source file. `rel` is the repo-relative path used for rule
    scoping, so fixture files can masquerade as in-tree paths."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(rel, 0, "MS000", f"unreadable source file: {err}")]
    code = strip_code(text)
    lines = code.splitlines()
    findings: List[Finding] = []

    in_src = rel.startswith("src/")
    for lineno, line in enumerate(lines, start=1):
        if in_src and not _path_allowed(rel, MS001_ALLOWED_PREFIXES):
            match = MS001_PATTERN.search(line)
            if match:
                findings.append(Finding(
                    rel, lineno, "MS001",
                    f"raw {match.group(0)} outside src/common/threading/ — "
                    "spawn through threading::ThreadPool so TSan and the "
                    "determinism suite see it"))
        if in_src and rel not in MS002_ALLOWED_FILES:
            for pattern in MS002_PATTERNS:
                match = pattern.search(line)
                if match:
                    findings.append(Finding(
                        rel, lineno, "MS002",
                        f"wall-clock/libc-random call '{match.group(0).strip()}' "
                        "outside common/clock / common/random — use SimClock / "
                        "DeterministicRng (determinism contract)"))
        if in_src and rel not in durability_allowlist:
            match = MS003_PATTERN.search(line)
            if match:
                findings.append(Finding(
                    rel, lineno, "MS003",
                    f"'{match.group(1)}' in a file not on "
                    "tools/durability_allowlist.txt — bare write/rename "
                    "without an audited fsync protocol is a torn-write risk"))
        match = MS005_PATTERN.search(line)
        if match:
            findings.append(Finding(
                rel, lineno, "MS005",
                "'(void)' cast of a call expression — handle the Status, "
                "propagate it, or discard by name with IgnoreStatusForTest()"))
        if not _path_allowed(rel, MS007_ALLOWED_PREFIXES):
            match = MS007_PATTERN.search(line)
            if match:
                findings.append(Finding(
                    rel, lineno, "MS007",
                    "direct chain::Blockchain construction bypasses lane "
                    "assignment (DESIGN.md section 14) — go through "
                    "runtime::ChainNode (or core::GeneratedScenario) so "
                    "transactions land in their assigned lane"))
        if in_src and not _path_allowed(rel, MS009_ALLOWED_PREFIXES):
            match = MS009_SOCKET_PATTERN.search(line)
            if match is None and rel not in durability_allowlist:
                match = MS009_IO_PATTERN.search(line)
            if match:
                findings.append(Finding(
                    rel, lineno, "MS009",
                    f"raw syscall '{match.group(1)}' outside src/net/ — wire "
                    "I/O goes through net::SocketTransport / net::EventLoop "
                    "(DESIGN.md section 16) so framing, CRC accounting, and "
                    "the simulator/socket seam stay in one place"))
        if not _path_allowed(rel, MS008_ALLOWED_PREFIXES):
            match = (MS008_RANGE_FOR_HEAD.search(line)
                     or MS008_PATTERN.search(line))
            if match:
                findings.append(Finding(
                    rel, lineno, "MS008",
                    "direct access to Table's two-tier storage layout "
                    "(head/chunks/tombstones/rows_) outside src/relational/ "
                    "— iterate with table.scan(), which merges the mutable "
                    "head with the sealed chunks and skips dead rows "
                    "(DESIGN.md section 15)"))
    return findings


# ---------------------------------------------------------------------------
# Rule MS004: tests that spawn pools / touch FaultInjector must be labeled.
# ---------------------------------------------------------------------------

_PROPERTIES_BLOCK = re.compile(
    r"set_tests_properties\s*\(\s*(?P<tests>.*?)\bPROPERTIES\s+LABELS\s+"
    r"(?P<label>[A-Za-z0-9_;\"]+)\s*\)",
    re.DOTALL,
)
_PROPERTY_BLOCK = re.compile(
    r"set_property\s*\(\s*TEST\s+(?P<tests>.*?)\bAPPEND\s+PROPERTY\s+LABELS\s+"
    r"(?P<label>[A-Za-z0-9_;\"]+)\s*\)",
    re.DOTALL,
)


def parse_test_labels(cmake_text: str) -> dict:
    """Returns {test_name: set(labels)} from a tests/CMakeLists.txt."""
    labels: dict = {}
    for block in (_PROPERTIES_BLOCK, _PROPERTY_BLOCK):
        for match in block.finditer(cmake_text):
            names = match.group("tests").split()
            for label in match.group("label").strip('"').split(";"):
                for name in names:
                    labels.setdefault(name, set()).add(label)
    return labels


def lint_test_labels(tests_dir: pathlib.Path,
                     cmake_path: pathlib.Path) -> List[Finding]:
    findings: List[Finding] = []
    try:
        labels = parse_test_labels(cmake_path.read_text(encoding="utf-8"))
    except OSError as err:
        return [Finding(str(cmake_path), 0, "MS000",
                        f"unreadable CMakeLists: {err}")]
    for src in sorted(tests_dir.glob("*_test.cc")):
        code = strip_code(src.read_text(encoding="utf-8"))
        name = src.stem
        test_labels = labels.get(name, set())
        if re.search(r"\bThreadPool\b", code) and "tsan" not in test_labels:
            findings.append(Finding(
                f"tests/{src.name}", 1, "MS004",
                f"test '{name}' spawns a ThreadPool but has no `tsan` ctest "
                "label — add it in tests/CMakeLists.txt so the TSan preset "
                "covers it"))
        if re.search(r"\bFaultInjector\b", code) and "fault" not in test_labels:
            findings.append(Finding(
                f"tests/{src.name}", 1, "MS004",
                f"test '{name}' touches FaultInjector but has no `fault` "
                "ctest label — add it in tests/CMakeLists.txt"))
    return findings


# ---------------------------------------------------------------------------
# Rule MS006: hand-rolled peer fleets in tests.
# ---------------------------------------------------------------------------

MS006_PATTERN = re.compile(
    r"\bmake_unique<\s*(?:core::)?Peer\s*>|\bnew\s+(?:core::)?Peer\b")
MS006_LOOP = re.compile(r"\b(?:for|while)\s*\(")
# A loop header at most this many lines above a construction is considered
# (heuristic; the loop body of a fleet builder is short).
MS006_LOOP_WINDOW = 8
MS006_MAX_DIRECT_PEERS = 3


def _inside_open_loop(lines: List[str], site_lineno: int) -> bool:
    """True if a for/while within the window above `site_lineno` has not
    closed its braces again by the site — i.e. the construction sits in the
    loop body, not merely below a finished loop."""
    site = site_lineno - 1  # 0-based index of the construction line
    lo = max(0, site - MS006_LOOP_WINDOW)
    for j in range(site - 1, lo - 1, -1):
        if not MS006_LOOP.search(lines[j]):
            continue
        balance = sum(line.count("{") - line.count("}")
                      for line in lines[j:site])
        if balance > 0:
            return True
    return False


def lint_peer_fleets(tests_dir: pathlib.Path) -> List[Finding]:
    findings: List[Finding] = []
    for src in sorted(tests_dir.glob("*_test.cc")):
        code = strip_code(src.read_text(encoding="utf-8"))
        lines = code.splitlines()
        sites = [lineno for lineno, line in enumerate(lines, start=1)
                 if MS006_PATTERN.search(line)]
        if not sites:
            continue
        looped = None
        for lineno in sites:
            if _inside_open_loop(lines, lineno):
                looped = lineno
                break
        if len(sites) <= MS006_MAX_DIRECT_PEERS and looped is None:
            continue
        how = (f"Peer constructed in a loop at line {looped}"
               if looped is not None
               else f"{len(sites)} direct Peer constructions")
        findings.append(Finding(
            f"tests/{src.name}", sites[0], "MS006",
            f"hand-rolled peer fleet ({how}) — build multi-peer worlds with "
            "the seeded generator (core::GeneratedScenario, "
            "src/core/scenario_gen.h) so seeds, adversity schedules, and "
            "the soak oracles apply"))
    return findings


# ---------------------------------------------------------------------------
# Tree walk.
# ---------------------------------------------------------------------------

def load_durability_allowlist(path: pathlib.Path) -> Set[str]:
    allowlist: Set[str] = set()
    if not path.exists():
        return allowlist
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = line.split("#", 1)[0].strip()
        if entry:
            allowlist.add(entry)
    return allowlist


def run_lint(root: pathlib.Path) -> List[Finding]:
    allowlist = load_durability_allowlist(root / "tools" /
                                          "durability_allowlist.txt")
    findings: List[Finding] = []
    for top in ("src", "tests", "bench", "examples"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cc", ".h"):
                continue
            rel = path.relative_to(root).as_posix()
            findings.extend(lint_file(path, rel, allowlist))
    tests_dir = root / "tests"
    cmake = tests_dir / "CMakeLists.txt"
    if tests_dir.is_dir() and cmake.exists():
        findings.extend(lint_test_labels(tests_dir, cmake))
    if tests_dir.is_dir():
        findings.extend(lint_peer_fleets(tests_dir))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: the checkout containing "
             "this script)")
    opts = parser.parse_args(argv)
    findings = run_lint(opts.root.resolve())
    for finding in findings:
        print(finding)
    if findings:
        print(f"medsync-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("medsync-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
