#!/usr/bin/env bash
# Launches one chain_node_daemon process per clinic role on loopback TCP,
# drives the Fig. 5 cascade to convergence, and checks that every process
# reports the SAME protocol outcome: identical contract entries and audit
# trails, and matching shared-view content digests between counterpart
# processes. Prints a wall-clock throughput/latency summary (the numbers
# quoted in EXPERIMENTS.md).
#
#   tools/run_loopback_cascade.sh [BUILD_DIR] [PORT_BASE]
#
# Exits nonzero if any process fails/times out or the reports disagree.
set -u

BUILD_DIR="${1:-build}"
PORT_BASE="${2:-$((21000 + RANDOM % 20000))}"
DAEMON="$BUILD_DIR/tools/chain_node_daemon"
BLOCK_MS="${BLOCK_MS:-200}"
TIMEOUT_S="${TIMEOUT_S:-60}"

if [[ ! -x "$DAEMON" ]]; then
  echo "error: $DAEMON not built (cmake --build $BUILD_DIR --target chain_node_daemon)" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/medsync_loopback.XXXXXX)"
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$WORK"' EXIT

ROLES=(doctor patient researcher observer)
declare -A PIDS
START_NS=$(date +%s%N)
for role in "${ROLES[@]}"; do
  "$DAEMON" --role="$role" --port-base="$PORT_BASE" \
    --block-interval-ms="$BLOCK_MS" --timeout-s="$TIMEOUT_S" \
    --report="$WORK/$role.json" 2>"$WORK/$role.err" &
  PIDS[$role]=$!
done

FAIL=0
for role in "${ROLES[@]}"; do
  if ! wait "${PIDS[$role]}"; then
    echo "FAIL: $role exited nonzero" >&2
    sed 's/^/  /' "$WORK/$role.err" >&2
    FAIL=1
  fi
done
END_NS=$(date +%s%N)
[[ $FAIL -ne 0 ]] && exit 1

python3 - "$WORK" "$START_NS" "$END_NS" <<'PYEOF'
import json, sys, pathlib

work, start_ns, end_ns = pathlib.Path(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
roles = ["doctor", "patient", "researcher", "observer"]
reports = {r: json.loads((work / f"{r}.json").read_text()) for r in roles}

fail = 0
def check(cond, message):
    global fail
    if not cond:
        print(f"FAIL: {message}")
        fail = 1

for role, report in reports.items():
    check(report["info"]["converged"], f"{role} did not converge")

# Entries and audit trails are replicated chain state: every process must
# report them byte-identically.
reference = reports["doctor"]["compare"]
for role in roles[1:]:
    for key in ("entries", "audit"):
        check(reports[role]["compare"][key] == reference[key],
              f"{role} {key} diverges from doctor's")

# Shared-view digests: each counterpart pair materializes the same content,
# and it must match the digest recorded on-chain.
for table, pair in (("D13&D31", ("doctor", "patient")),
                    ("D23&D32", ("doctor", "researcher"))):
    digests = {r: reports[r]["compare"]["view_digests"].get(table) for r in pair}
    values = set(digests.values())
    check(len(values) == 1 and None not in values,
          f"{table} view digests diverge: {digests}")
    on_chain = reference["entries"][table]["content_digest"]
    check(values == {on_chain},
          f"{table} local digests {values} != on-chain {on_chain}")
    check(reference["entries"][table]["version"] == 2,
          f"{table} did not reach version 2")
    check(reference["entries"][table]["pending_acks"] == 0,
          f"{table} still has pending acks")

# Gapless audit: both tables show register -> committed update -> ack.
for table in ("D13&D31", "D23&D32"):
    methods = [r["method"] for r in reference["audit"][table]]
    check(methods == ["register_table", "request_update", "ack_update"],
          f"{table} audit trail {methods} is not register/update/ack")
    check(all(r["committed"] for r in reference["audit"][table]),
          f"{table} audit trail contains a denied/failed transaction")

if fail:
    sys.exit(1)

# Wall-clock summary. Timestamps inside reports are CLOCK_REALTIME micros.
total_s = (end_ns - start_ns) / 1e9
researcher, doctor = reports["researcher"]["info"], reports["doctor"]["info"]
updates = sum(reports[r]["info"].get("peer", {}).get("updates_committed", 0)
              for r in roles)
first_act = researcher["acted_at"]
last_conv = max(reports[r]["info"]["converged_at"] for r in roles)
cascade_s = (last_conv - first_act) / 1e6
step16_s = (doctor["acted_at"] - first_act) / 1e6
step711_s = (last_conv - doctor["acted_at"]) / 1e6
print(f"loopback cascade: CONVERGED 4/4 processes, reports agree")
print(f"  total wall time      : {total_s:.2f} s (includes bootstrap + linger)")
print(f"  cascade latency      : {cascade_s:.2f} s "
      f"(researcher update -> all converged)")
print(f"    steps 1-6 (MeA)    : {step16_s:.2f} s")
print(f"    steps 7-11 (dosage): {step711_s:.2f} s")
print(f"  committed updates    : {updates} "
      f"({updates / cascade_s:.2f} updates/s over the cascade)")
PYEOF
exit $?
