#!/usr/bin/env python3
"""medsync-sca: whole-program semantic analyzer for concurrency and
determinism invariants (DESIGN.md section 12).

Where medsync-lint (tools/medsync_lint.py) matches per-line regexes, this
tool builds a program model — functions, call graph, lock-acquisition
scopes, loop/type information — across every translation unit and checks
four rule families the regexes cannot express:

  MS101 lock-order       Extracts the lock-acquisition graph from
                         threading::MutexLock / Mutex::Lock sites (the
                         MEDSYNC_GUARDED_BY-annotated owners) across all
                         TUs and fails on cycles: two mutexes acquired in
                         opposite orders on two paths is a potential
                         deadlock. The finding prints the full witness
                         path (who acquires what, through which calls).
                         A mutex re-acquired on a path that already holds
                         it (threading::Mutex is non-recursive) is the
                         degenerate cycle and reported the same way.
  MS102 determinism-flow Flags iteration over std::unordered_map/set
                         whose loop body reaches a serialization, digest,
                         metrics-snapshot, or network-send sink without
                         an ordered rebuild in between. Hash-iteration
                         order is implementation-defined, so such a flow
                         leaks nondeterministic order into bytes that the
                         soak fingerprints require byte-identical.
                         Collecting into a container that is sorted
                         before the sink (or folding into an explicitly
                         order-insensitive sink like the RowDigestAcc
                         multiset digest) is the corrected form.
  MS103 loop-blocking    Flags blocking primitives — fsync/fdatasync,
                         sleeps, CondVar::Wait / Latch::Wait /
                         TaskGroup::Wait, and locking a mutex whose
                         critical sections themselves block — reachable
                         from callbacks registered on the single-threaded
                         net::EventLoop (WatchFd / Schedule). A blocked
                         loop thread stalls every connection and timer in
                         the process. Audited intentional sites (the
                         commit-path durability fsync) are sanctioned in
                         tools/sca_allowlist.txt with their rationale.
  MS104 status-leak      A Status/Result<T> bound to a variable that is
                         never read afterwards (not branched on, not
                         returned, not passed on, not discarded by name
                         via IgnoreStatusForTest). Closes the gap MS005's
                         `(void)`-cast regex leaves open: binding to a
                         named variable silences -Werror=unused-result
                         just as invisibly.

Frontends
  --frontend=clang  libclang (python3 clang.cindex) over the exported
                    compile_commands.json — precise types and scopes.
  --frontend=text   a built-in dependency-free C++ tokenizer/indexer:
                    same program model, heuristic types. This is what
                    runs in containers without libclang.
  --frontend=auto   clang when importable, else text with a warning
                    (the default; check.sh uses it so the gate degrades
                    gracefully instead of silently not running).

Suppression
  tools/sca_allowlist.txt entries `MSxxx <substring>  # rationale`
  suppress findings whose location or witness path contains <substring>;
  inline `// medsync-sca(MSxxx): rationale` on the finding line does the
  same for one site. Every entry must carry a rationale.

Output
  Human-readable findings (with witness paths) by default; --sarif FILE
  emits SARIF 2.1.0 for CI annotations and editors ('-' for stdout).

Exit status: non-zero iff unsuppressed findings were reported (or the
requested frontend is unavailable).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

# ---------------------------------------------------------------------------
# Program model: what both frontends produce and all rules consume.
# ---------------------------------------------------------------------------


class CallSite:
    __slots__ = ("name", "recv_type", "line", "pos", "args")

    def __init__(self, name: str, recv_type: Optional[str], line: int,
                 pos: int, args: Sequence[str] = ()):
        self.name = name          # simple or qualified ("Wal::Sync") name
        self.recv_type = recv_type  # class name of receiver when known
        self.line = line
        self.pos = pos            # token index (orders events within a body)
        self.args = frozenset(args)  # identifiers in the argument list


class AcquireSite:
    __slots__ = ("mutex", "line", "pos", "scope_end")

    def __init__(self, mutex: str, line: int, pos: int, scope_end: int):
        self.mutex = mutex        # canonical id, e.g. "ThreadPool::mu_"
        self.line = line
        self.pos = pos
        self.scope_end = scope_end  # token index where the lock scope ends


class UnorderedLoop:
    __slots__ = ("container", "line", "body_start", "body_end", "out_vars")

    def __init__(self, container: str, line: int, body_start: int,
                 body_end: int):
        self.container = container
        self.line = line
        self.body_start = body_start
        self.body_end = body_end
        # vectors appended to inside the body (for the sort-before-sink check)
        self.out_vars: List[str] = []


class StatusBinding:
    __slots__ = ("var", "line", "decl_end")

    def __init__(self, var: str, line: int, decl_end: int):
        self.var = var
        self.line = line
        self.decl_end = decl_end  # token index of the binding's ';'


class Registration:
    """A callback handed to an event loop / scheduler (Schedule, WatchFd)."""
    __slots__ = ("kind", "recv_type", "line", "body_start", "body_end")

    def __init__(self, kind: str, recv_type: str, line: int, body_start: int,
                 body_end: int):
        self.kind = kind
        self.recv_type = recv_type
        self.line = line
        self.body_start = body_start  # lambda body token range
        self.body_end = body_end


class FunctionModel:
    __slots__ = ("qname", "cls", "file", "line", "calls", "acquires",
                 "unordered_loops", "status_bindings", "registrations",
                 "tokens", "sorted_vars")

    def __init__(self, qname: str, cls: Optional[str], file: str, line: int):
        self.qname = qname
        self.cls = cls            # enclosing class simple name, if a method
        self.file = file
        self.line = line
        self.calls: List[CallSite] = []
        self.acquires: List[AcquireSite] = []
        self.unordered_loops: List[UnorderedLoop] = []
        self.status_bindings: List[StatusBinding] = []
        self.registrations: List[Registration] = []
        self.tokens: List["Tok"] = []   # body tokens (text frontend)
        self.sorted_vars: List[Tuple[str, int]] = []  # (var, pos) of sorts

    @property
    def simple_name(self) -> str:
        return self.qname.rsplit("::", 1)[-1]


class Program:
    def __init__(self) -> None:
        self.functions: List[FunctionModel] = []
        self.by_simple: Dict[str, List[FunctionModel]] = {}
        self.by_class_method: Dict[Tuple[str, str], List[FunctionModel]] = {}
        # class -> {member -> type text}; "" class = file-scope globals
        self.member_types: Dict[str, Dict[str, str]] = {}
        # function simple name -> return type text (last writer wins; used
        # for Status-returning and unordered-returning sets)
        self.return_types: Dict[str, str] = {}
        self.suppressions: Dict[Tuple[str, int], Set[str]] = {}

    def add(self, fn: FunctionModel) -> None:
        self.functions.append(fn)
        self.by_simple.setdefault(fn.simple_name, []).append(fn)
        if fn.cls:
            self.by_class_method.setdefault(
                (fn.cls, fn.simple_name), []).append(fn)

    def resolve(self, site: CallSite,
                caller: FunctionModel) -> List[FunctionModel]:
        """Resolves a call site to candidate definitions. Receiver-typed and
        in-class calls resolve exactly; bare names resolve to all same-named
        definitions (virtual-dispatch over-approximation) unless the name is
        too common to be meaningful."""
        if "::" in site.name:
            cls, method = site.name.rsplit("::", 2)[-2:]
            hit = self.by_class_method.get((cls, method))
            if hit:
                return hit
        name = site.name.rsplit("::", 1)[-1]
        if site.recv_type:
            hit = self.by_class_method.get((site.recv_type, name))
            if hit:
                return hit
            # Receiver of a known type but method not defined in-tree
            # (std:: containers etc.): not resolvable.
            return []
        if caller.cls:
            hit = self.by_class_method.get((caller.cls, name))
            if hit:
                return hit
        candidates = self.by_simple.get(name, [])
        if len(candidates) > MAX_AMBIGUOUS_CANDIDATES:
            return []
        return candidates


MAX_AMBIGUOUS_CANDIDATES = 6

# ---------------------------------------------------------------------------
# Rule configuration.
# ---------------------------------------------------------------------------

# MS102: sinks whose byte/order-sensitive output must not consume hash-order
# iteration. (class, method) with class None = any receiver / free function.
SINK_METHODS = {
    ("Json", "Dump"), ("Json", "Serialize"), ("Json", "Append"),
    ("Sha256", "Update"),
    (None, "Serialize"), (None, "SerializeFile"), (None, "SerializedSize"),
    (None, "ToJson"), (None, "JsonSnapshot"), (None, "ContentDigest"),
    (None, "AppendRecord"), (None, "WriteStringToFile"),
    (None, "EncodeFrame"),
    (None, "Send"), (None, "SendSized"), (None, "Broadcast"),
}
# Order-insensitive sinks: commutative folds, safe to feed in any order.
ORDER_INSENSITIVE_METHODS = {
    ("RowDigestAcc", "Add"), ("RowDigestAcc", "Remove"),
}
SORT_CALLS = {"sort", "stable_sort", "RowsInKeyOrder"}

# MS103: directly-blocking primitives.
BLOCKING_FREE = {"fsync", "fdatasync", "syncfs", "sync", "sleep", "usleep",
                 "nanosleep", "sleep_for", "sleep_until", "system"}
BLOCKING_METHODS = {("CondVar", "Wait"), ("Latch", "Wait"),
                    ("TaskGroup", "Wait")}
# Types whose Schedule/WatchFd registrations run on the event-loop thread.
LOOP_RECEIVER_TYPES = {"EventLoop", "Scheduler"}
REGISTRATION_METHODS = {"Schedule", "WatchFd"}

# MS104: the sanctioned discard-by-name idiom.
SANCTIONED_DISCARD = "IgnoreStatusForTest"

MAX_WITNESS_DEPTH = 24


class Finding:
    def __init__(self, rule: str, file: str, line: int, message: str,
                 witness: Optional[List[str]] = None):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.witness = witness or []

    def render(self) -> str:
        out = [f"{self.file}:{self.line}: {self.rule} {self.message}"]
        out.extend(f"    {step}" for step in self.witness)
        return "\n".join(out)

    def haystack(self) -> str:
        """Text the allowlist substring-matches against."""
        return "\n".join([f"{self.file}:{self.line}", self.message]
                         + self.witness)


# ---------------------------------------------------------------------------
# Text frontend: tokenizer.
# ---------------------------------------------------------------------------


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind  # id | punct | num
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # debugging aid
        return f"{self.text}@{self.line}"


_SUPPRESS_RE = re.compile(r"//\s*medsync-sca\((MS\d{3})\)")
_TOKEN_RE = re.compile(
    r"""
      (?P<comment>//(?:[^\n]*\\\n)*[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<chr>'(?:\\.|[^'\\\n])*')
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct>::|->|\.\.\.|<<=|>>=|<=|>=|==|!=|&&|\|\||\+\+|--|->\*|[{}()\[\];:,<>=+\-*/&|!~^%?.#])
    """,
    re.VERBOSE | re.DOTALL,
)
_PREPROC_RE = re.compile(r"^[ \t]*#[^\n]*(?:\\\n[^\n]*)*", re.MULTILINE)


def tokenize(text: str,
             suppressions: Dict[int, Set[str]]) -> List[Tok]:
    """Tokenizes C++ source; comments/strings/preprocessor are dropped but
    `// medsync-sca(MSxxx)` suppression comments are recorded by line."""
    for m in _SUPPRESS_RE.finditer(text):
        line = text.count("\n", 0, m.start()) + 1
        suppressions.setdefault(line, set()).add(m.group(1))
    # Blank preprocessor lines (keeping newlines for line numbers).
    text = _PREPROC_RE.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)
    toks: List[Tok] = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        if m.lastgroup in ("comment", "rawstr", "str", "chr"):
            continue
        kind = "num" if m.lastgroup == "num" else (
            "id" if m.lastgroup == "id" else "punct")
        toks.append(Tok(kind, m.group(0), line))
    return toks


# ---------------------------------------------------------------------------
# Text frontend: structural indexer.
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "new", "delete", "case", "default", "break", "continue",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "alignof", "decltype", "noexcept", "throw", "assert", "goto",
    "static_assert", "co_await", "co_return", "co_yield", "typeid",
}
_DECL_LINE_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|inline\s+|constexpr\s+|thread_local\s+)*"
    r"(?P<type>(?:const\s+)?[A-Za-z_][\w:]*(?:<[^;={}]*>)?"
    r"(?:\s*(?:const|[*&]))*)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:MEDSYNC_GUARDED_BY\s*\([^)]*\)\s*)?"
    r"(?:=[^;]*|\{[^;]*\})?;")

_TYPEISH_STOP = {";", "{", "}", ",", "(", ")", "return"}


class TextFrontend:
    """Builds the Program from raw source with a tokenizer and structural
    heuristics. Precise enough for this codebase's house style (and the
    fixture suite pins exactly what it must catch); the clang frontend is
    the fully general one."""

    def __init__(self, root: pathlib.Path, rel_paths: Sequence[str]):
        self.root = root
        self.rel_paths = list(rel_paths)
        self.program = Program()

    # -- pass 1: harvest class members and function signatures ---------------

    def harvest_declarations(self, rel: str, text: str) -> None:
        prog = self.program
        # Class body spans via a simple scope scan over tokens.
        supp: Dict[int, Set[str]] = {}
        toks = tokenize(text, supp)
        for line, rules in supp.items():
            prog.suppressions.setdefault((rel, line), set()).update(rules)
        lines = text.splitlines()
        for cls, start_line, end_line in self._class_spans(toks):
            members = prog.member_types.setdefault(cls, {})
            for lineno in range(start_line, min(end_line, len(lines)) + 1):
                m = _DECL_LINE_RE.match(lines[lineno - 1])
                if m:
                    members[m.group("name")] = m.group("type")
        # File-scope globals (anonymous-namespace mutexes etc.).
        globals_ = prog.member_types.setdefault("", {})
        for lineno, raw in enumerate(lines, start=1):
            m = _DECL_LINE_RE.match(raw)
            if m and "Mutex" in m.group("type"):
                globals_[m.group("name")] = m.group("type")
        # Return types from function definitions/declarations:
        #   <type tokens> [Class::]Name ( ... ) [;{]
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "id" and i + 1 < n and toks[i + 1].text == "(" \
                    and t.text not in _KEYWORDS:
                rtype = self._preceding_type(toks, i)
                if rtype:
                    prog.return_types.setdefault(t.text, rtype)
            i += 1

    def _class_spans(self, toks: List[Tok]) -> List[Tuple[str, int, int]]:
        spans = []
        stack: List[Tuple[Optional[str], int]] = []  # (class name | None,
        i, n = 0, len(toks)                          #  depth when opened)
        depth = 0
        while i < n:
            t = toks[i]
            if t.text in ("class", "struct") and i + 1 < n \
                    and toks[i + 1].kind == "id":
                # Skip to the opening '{' (may cross base-class lists);
                # abandon at ';' (forward declaration).
                j = i + 2
                while j < n and toks[j].text not in ("{", ";"):
                    j += 1
                if j < n and toks[j].text == "{":
                    stack.append((toks[i + 1].text, depth))
                    depth += 1
                    spans.append([toks[i + 1].text, toks[j].line, -1, depth])
                    i = j + 1
                    continue
                i = j + 1
                continue
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if stack and depth == stack[-1][1]:
                    name, _ = stack.pop()
                    for span in reversed(spans):
                        if span[0] == name and span[2] == -1:
                            span[2] = t.line
                            break
            i += 1
        return [(s[0], s[1], s[2] if s[2] != -1 else 10 ** 9) for s in spans]

    def _preceding_type(self, toks: List[Tok], name_idx: int) -> str:
        """Type tokens preceding a declarator name, bounded by statement
        punctuation. Empty string when the name is not a declaration."""
        j = name_idx - 1
        parts: List[str] = []
        while j >= 0:
            t = toks[j]
            if t.text in _TYPEISH_STOP or t.kind == "num":
                break
            if t.text in (">",):  # template argument close — grab the group
                bal = 1
                parts.append(t.text)
                j -= 1
                while j >= 0 and bal > 0:
                    if toks[j].text == ">":
                        bal += 1
                    elif toks[j].text == "<":
                        bal -= 1
                    parts.append(toks[j].text)
                    j -= 1
                continue
            if t.kind == "id" or t.text in ("::", "*", "&", "const"):
                parts.append(t.text)
                j -= 1
                continue
            break
        parts.reverse()
        type_text = " ".join(parts).strip()
        # Filter obvious non-types (control keywords, operators, `return x(`).
        if not type_text or type_text.split()[-1] in _KEYWORDS:
            return ""
        # A trailing '::' means the name is *qualified* (Status::OK(...)),
        # i.e. a call through a scope, not a declaration of the name.
        if type_text.endswith("::"):
            return ""
        return type_text

    # -- pass 2: function bodies ---------------------------------------------

    def index_file(self, rel: str, text: str) -> None:
        supp: Dict[int, Set[str]] = {}
        toks = tokenize(text, supp)
        spans = self._class_spans(toks)
        n = len(toks)
        i = 0
        depth = 0
        while i < n:
            t = toks[i]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
            if t.kind == "id" and t.text not in _KEYWORDS and i + 1 < n \
                    and toks[i + 1].text == "(":
                body = self._match_function(toks, i)
                if body is not None:
                    close_paren, body_open, body_close, qname = body
                    cls = self._enclosing_class(spans, t.line)
                    if "::" in qname:
                        cls = qname.rsplit("::", 2)[-2]
                    fn = FunctionModel(
                        qname if "::" in qname or not cls
                        else f"{cls}::{qname}",
                        cls, rel, t.line)
                    fn.tokens = toks[body_open + 1:body_close]
                    params = self._param_types(toks, i + 1, close_paren)
                    self._analyze_body(fn, toks, body_open + 1, body_close,
                                       params)
                    self.program.add(fn)
                    i = body_close + 1
                    continue
            i += 1

    def _enclosing_class(self, spans, line: int) -> Optional[str]:
        best = None
        for cls, start, end in spans:
            if start <= line <= end:
                best = cls
        return best

    def _match_function(self, toks: List[Tok], name_idx: int):
        """If toks[name_idx] starts a function definition, returns
        (close_paren, body_open, body_close, qualified_name)."""
        n = len(toks)
        # Qualified name: walk back over `Ns::Cls::`.
        qparts = [toks[name_idx].text]
        j = name_idx - 1
        while j - 1 >= 0 and toks[j].text == "::" \
                and toks[j - 1].kind == "id":
            qparts.insert(0, toks[j - 1].text)
            j -= 2
        # Must look like a declaration: preceded by a type (or ctor/dtor
        # whose name matches the class). A call site has an operator,
        # keyword, or statement punctuation with no type before it.
        rtype = self._preceding_type(toks, j + 1)
        is_ctor_like = len(qparts) >= 2 and (
            qparts[-1] == qparts[-2] or qparts[-1].startswith("~"))
        if not rtype and not is_ctor_like:
            return None
        # Balance the parameter list.
        i = name_idx + 1
        bal = 0
        while i < n:
            if toks[i].text == "(":
                bal += 1
            elif toks[i].text == ")":
                bal -= 1
                if bal == 0:
                    break
            i += 1
        if i >= n:
            return None
        close_paren = i
        i += 1
        # Trailing qualifiers / annotation macros / member-init list.
        while i < n:
            t = toks[i]
            if t.text in ("const", "noexcept", "override", "final",
                          "mutable", "&", "&&"):
                i += 1
                continue
            if t.kind == "id" and i + 1 < n and toks[i + 1].text == "(":
                # Annotation macro: MEDSYNC_EXCLUDES(mu_) etc.
                bal = 0
                while i < n:
                    if toks[i].text == "(":
                        bal += 1
                    elif toks[i].text == ")":
                        bal -= 1
                        if bal == 0:
                            break
                    i += 1
                i += 1
                continue
            if t.kind == "id":  # bare macro, e.g. MEDSYNC_NO_THREAD_SAFETY...
                i += 1
                continue
            if t.text == "->":  # trailing return type
                i += 1
                while i < n and toks[i].text not in ("{", ";"):
                    i += 1
                continue
            if t.text == ":":
                # Member-initializer list: name ( ... ) | name { ... } [, ...]
                i += 1
                while i < n:
                    while i < n and toks[i].kind != "id":
                        i += 1
                    i += 1  # past the member name
                    if i >= n or toks[i].text not in ("(", "{"):
                        return None
                    opener, closer = toks[i].text, \
                        ")" if toks[i].text == "(" else "}"
                    bal = 0
                    while i < n:
                        if toks[i].text == opener:
                            bal += 1
                        elif toks[i].text == closer:
                            bal -= 1
                            if bal == 0:
                                break
                        i += 1
                    i += 1
                    if i < n and toks[i].text == ",":
                        i += 1
                        continue
                    break
                continue
            break
        if i >= n or toks[i].text != "{":
            return None
        body_open = i
        bal = 0
        while i < n:
            if toks[i].text == "{":
                bal += 1
            elif toks[i].text == "}":
                bal -= 1
                if bal == 0:
                    break
            i += 1
        if i >= n:
            return None
        return close_paren, body_open, i, "::".join(qparts)

    # -- body analysis -------------------------------------------------------

    def _param_types(self, toks: List[Tok], open_paren: int,
                     close_paren: int) -> Dict[str, str]:
        """Parameter name -> base type for one parameter list."""
        params: Dict[str, str] = {}
        seg: List[Tok] = []
        bal = 0
        for k in range(open_paren, close_paren + 1):
            t = toks[k]
            if t.text in ("(", "<", "["):
                bal += 1
            elif t.text in (")", ">", "]"):
                bal -= 1
            if (t.text == "," and bal == 1) or k == close_paren:
                ids = [s.text for s in seg if s.kind == "id"
                       and s.text not in ("const", "mutable")]
                if len(ids) >= 2:
                    params[ids[-1]] = ids[-2]
                seg = []
                continue
            if bal >= 1:
                seg.append(t)
        return params

    def _analyze_body(self, fn: FunctionModel, toks: List[Tok],
                      start: int, end: int,
                      params: Optional[Dict[str, str]] = None) -> None:
        locals_: Dict[str, str] = dict(params or {})
        prog = self.program
        members = dict(prog.member_types.get("", {}))
        if fn.cls:
            members.update(prog.member_types.get(fn.cls, {}))

        def type_of(name: str) -> Optional[str]:
            return locals_.get(name) or members.get(name)

        def block_end(open_idx: int) -> int:
            bal = 0
            k = open_idx
            while k < end:
                if toks[k].text == "{":
                    bal += 1
                elif toks[k].text == "}":
                    bal -= 1
                    if bal == 0:
                        return k
                k += 1
            return end

        def enclosing_block_end(idx: int) -> int:
            """Token index closing the innermost block containing idx."""
            bal = 0
            k = idx
            while k < end:
                if toks[k].text == "{":
                    bal += 1
                elif toks[k].text == "}":
                    bal -= 1
                    if bal < 0:
                        return k
                k += 1
            return end

        i = start
        while i < end:
            t = toks[i]
            # Local declarations (one-line regex equivalent on tokens):
            #   Type name = / ( / { / ;
            if t.kind == "id" and t.text not in _KEYWORDS and i + 1 < end \
                    and toks[i + 1].text in ("=", ";", "(", "{") \
                    and toks[i - 1].kind in ("id", "punct"):
                dtype = self._preceding_type(toks, i)
                if dtype and dtype.split()[-1] not in ("return",):
                    base = dtype.replace("const", "").replace("&", "") \
                        .replace("*", "").strip()
                    if base and base != "auto":
                        locals_.setdefault(t.text, base)
                    # MS104: Status/Result bindings.
                    if re.match(r"^(?:medsync\s*::\s*)?"
                                r"(?:common\s*::\s*)?"
                                r"(Status|Result\b)", base) \
                            and toks[i + 1].text in ("=", "("):
                        semi = i
                        while semi < end and toks[semi].text != ";":
                            semi += 1
                        fn.status_bindings.append(
                            StatusBinding(t.text, t.line, semi))
                    if base == "auto" or dtype == "auto":
                        pass
            # `auto name = Call(...)` where Call returns Status/Result.
            if t.text == "auto" and i + 2 < end and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "=":
                j = i + 3
                callee = None
                while j < end and toks[j].text != ";":
                    if toks[j].kind == "id" and j + 1 < end \
                            and toks[j + 1].text == "(":
                        callee = toks[j].text
                        break
                    j += 1
                rtype = prog.return_types.get(callee or "", "")
                if re.match(r"^(?:\w+\s*::\s*)*(Status|Result\b)", rtype):
                    semi = j
                    while semi < end and toks[semi].text != ";":
                        semi += 1
                    fn.status_bindings.append(
                        StatusBinding(toks[i + 1].text, toks[i + 1].line,
                                      semi))
            # MutexLock acquisitions: [threading::] MutexLock name ( expr )
            if t.text == "MutexLock" and i + 2 < end \
                    and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "(":
                mutex = self._mutex_id(toks, i + 3, type_of, fn)
                fn.acquires.append(AcquireSite(
                    mutex, t.line, i, enclosing_block_end(i)))
                i += 3
                continue
            # Direct expr.Lock() / expr->Lock() on a Mutex-typed member.
            if t.text == "Lock" and i + 1 < end and toks[i + 1].text == "(" \
                    and i >= 2 and toks[i - 1].text in (".", "->"):
                recv = toks[i - 2].text
                rtype = type_of(recv) or ""
                if "Mutex" in rtype:
                    mutex = self._qualify_mutex(recv, rtype, fn)
                    fn.acquires.append(AcquireSite(
                        mutex, t.line, i, enclosing_block_end(i)))
            # Range-for over an unordered container.
            if t.text == "for" and i + 1 < end and toks[i + 1].text == "(":
                # Register the loop declarator as a typed local:
                #   for (const StepEvent& event : events_)
                j = i + 2
                bal = 1
                decl: List[Tok] = []
                while j < end and bal > 0:
                    if toks[j].text == "(":
                        bal += 1
                    elif toks[j].text == ")":
                        bal -= 1
                    elif toks[j].text == ":" and bal == 1:
                        ids = [s.text for s in decl if s.kind == "id"
                               and s.text not in ("const", "auto")]
                        if len(ids) >= 2:
                            locals_.setdefault(ids[-1], ids[-2])
                        break
                    decl.append(toks[j])
                    j += 1
                loop = self._range_for(toks, i, end, type_of, block_end, fn)
                if loop:
                    fn.unordered_loops.append(loop)
            # Callback registrations: recv -> Schedule( ... [lambda] ... )
            if t.kind == "id" and t.text in REGISTRATION_METHODS \
                    and i + 1 < end and toks[i + 1].text == "(" \
                    and i >= 2 and toks[i - 1].text in (".", "->"):
                recv = toks[i - 2].text
                rtype = (type_of(recv) or "").replace("*", "").strip()
                rtype = rtype.rsplit("::", 1)[-1].split()[-1] if rtype else ""
                if rtype in LOOP_RECEIVER_TYPES:
                    # Find the lambda argument's body range.
                    j = i + 1
                    bal = 0
                    lam_open = None
                    while j < end:
                        if toks[j].text == "(":
                            bal += 1
                        elif toks[j].text == ")":
                            bal -= 1
                            if bal == 0:
                                break
                        elif toks[j].text == "{" and lam_open is None:
                            lam_open = j
                            j = block_end(j)
                            continue
                        j += 1
                    if lam_open is not None:
                        fn.registrations.append(Registration(
                            t.text, rtype, t.line, lam_open + 1,
                            block_end(lam_open)))
            # std::sort / std::stable_sort over a variable.
            if t.kind == "id" and t.text in SORT_CALLS and i + 1 < end \
                    and toks[i + 1].text == "(":
                j = i + 2
                while j < end and toks[j].text != ")":
                    if toks[j].kind == "id" and type_of(toks[j].text):
                        fn.sorted_vars.append((toks[j].text, j))
                    j += 1
            # Generic call sites.
            if t.kind == "id" and t.text not in _KEYWORDS and i + 1 < end \
                    and toks[i + 1].text == "(":
                recv_type = None
                name = t.text
                if i >= 2 and toks[i - 1].text in (".", "->"):
                    recv = toks[i - 2].text
                    rt = type_of(recv)
                    if rt:
                        rt = re.sub(r"\bconst\b|[*&]", "", rt).strip()
                        recv_type = rt.split("<")[0].rsplit("::", 1)[-1] \
                            .strip()
                    elif recv == "this" or recv.endswith("_"):
                        recv_type = None
                elif i >= 2 and toks[i - 1].text == "::" \
                        and toks[i - 2].kind == "id":
                    name = f"{toks[i - 2].text}::{t.text}"
                args: Set[str] = set()
                j = i + 1
                bal = 0
                while j < end:
                    if toks[j].text == "(":
                        bal += 1
                    elif toks[j].text == ")":
                        bal -= 1
                        if bal == 0:
                            break
                    elif toks[j].kind == "id" \
                            and toks[j].text not in _KEYWORDS:
                        args.add(toks[j].text)
                    j += 1
                # Skip declarations already recorded as locals with type ==
                # the identifier itself; calls to types (constructors) keep
                # flowing through resolve(), which simply finds no body.
                fn.calls.append(CallSite(name, recv_type, t.line, i, args))
            i += 1

    def _mutex_id(self, toks: List[Tok], idx: int, type_of, fn) -> str:
        """Canonical mutex id for the expression starting at toks[idx]
        (the MutexLock constructor argument)."""
        parts = []
        j = idx
        while j < len(toks) and toks[j].text != ")":
            parts.append(toks[j].text)
            j += 1
        expr = "".join(parts)
        # obj.mu_ / obj->mu_ / ptr->mu_: qualify by the receiver's type.
        m = re.match(r"^([A-Za-z_]\w*)(?:\.|->)([A-Za-z_]\w*)$", expr)
        if m:
            rtype = type_of(m.group(1)) or "?"
            rtype = re.sub(r"\bconst\b|[*&]", "", rtype).strip()
            return f"{rtype.split('<')[0].rsplit('::', 1)[-1]}::{m.group(2)}"
        m = re.match(r"^\*?([A-Za-z_]\w*)$", expr)
        if m:
            return self._qualify_mutex(m.group(1), type_of(m.group(1)) or "",
                                       fn)
        return f"{fn.cls or fn.file}::{expr}"

    def _qualify_mutex(self, name: str, declared_type: str,
                       fn: FunctionModel) -> str:
        if fn.cls and name in self.program.member_types.get(fn.cls, {}):
            return f"{fn.cls}::{name}"
        if name in self.program.member_types.get("", {}):
            return f"{fn.file}::{name}"
        # Parameter or local reference (CondVar::Wait(mu) style): attribute
        # to the enclosing class so ThreadPool::WorkerLoop(mu) == its mu_.
        return f"{fn.cls or fn.file}::{name}"

    def _range_for(self, toks: List[Tok], for_idx: int, end: int, type_of,
                   block_end, fn: FunctionModel) -> Optional[UnorderedLoop]:
        """Parses `for ( decl : range ) { body }`; returns an UnorderedLoop
        when the range expression has an unordered container type."""
        j = for_idx + 1
        bal = 0
        colon = None
        close = None
        while j < end:
            if toks[j].text == "(":
                bal += 1
            elif toks[j].text == ")":
                bal -= 1
                if bal == 0:
                    close = j
                    break
            elif toks[j].text == ":" and bal == 1 and colon is None:
                colon = j
            elif toks[j].text == ";" and bal == 1:
                return None  # classic for(;;)
            j += 1
        if colon is None or close is None:
            return None
        range_toks = toks[colon + 1:close]
        rtype = self._expr_type(range_toks, type_of)
        if not rtype or "unordered_" not in rtype:
            return None
        body_open = close + 1
        if body_open >= end or toks[body_open].text != "{":
            # Single-statement body: treat up to the ';'.
            body_close = body_open
            while body_close < end and toks[body_close].text != ";":
                body_close += 1
            loop = UnorderedLoop("".join(tk.text for tk in range_toks),
                                 toks[for_idx].line, body_open, body_close)
        else:
            loop = UnorderedLoop("".join(tk.text for tk in range_toks),
                                 toks[for_idx].line, body_open + 1,
                                 block_end(body_open))
        # Record push_back/emplace_back targets for the sort-before-sink leg.
        k = loop.body_start
        while k < loop.body_end:
            if toks[k].text in ("push_back", "emplace_back", "insert",
                                "emplace") and k >= 2 \
                    and toks[k - 1].text in (".", "->"):
                loop.out_vars.append(toks[k - 2].text)
            k += 1
        return loop

    def _expr_type(self, expr_toks: List[Tok], type_of) -> Optional[str]:
        ids = [t for t in expr_toks if t.kind == "id"]
        if not ids:
            return None
        # `var`, `*var`, `obj.member`, `obj.accessor()`, `Fn(x)`.
        t0 = type_of(ids[0].text)
        if t0 and len(ids) == 1:
            return t0
        last = ids[-1].text
        member_type = None
        if len(ids) >= 2:
            member_type = self.program.return_types.get(last)
            owner_type = type_of(ids[0].text)
            if owner_type:
                base = owner_type.split("<")[0].rsplit("::", 1)[-1].strip()
                member_type = (self.program.member_types.get(base, {})
                               .get(last) or member_type)
        return member_type or t0 or self.program.return_types.get(last)

    # -- driver --------------------------------------------------------------

    def build(self) -> Program:
        texts = {}
        for rel in self.rel_paths:
            try:
                texts[rel] = (self.root / rel).read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
        for rel, text in texts.items():
            self.harvest_declarations(rel, text)
        for rel, text in texts.items():
            self.index_file(rel, text)
        return self.program


# ---------------------------------------------------------------------------
# Clang frontend (libclang / clang.cindex over compile_commands.json).
# ---------------------------------------------------------------------------


class ClangFrontend:
    """Precise frontend: the same Program, built from libclang ASTs. Only
    constructed when `import clang.cindex` succeeds."""

    def __init__(self, root: pathlib.Path, build_dir: pathlib.Path):
        import clang.cindex as cindex  # noqa: deferred import by design
        self.cindex = cindex
        self.root = root
        self.build_dir = build_dir
        self.program = Program()

    def build(self) -> Program:
        cindex = self.cindex
        db = cindex.CompilationDatabase.fromDirectory(str(self.build_dir))
        index = cindex.Index.create()
        seen: Set[str] = set()
        for cmd in db.getAllCompileCommands():
            src = str(pathlib.Path(cmd.directory) / cmd.filename) \
                if not pathlib.Path(cmd.filename).is_absolute() \
                else cmd.filename
            src = str(pathlib.Path(src).resolve())
            if src in seen or not src.startswith(str(self.root)):
                continue
            seen.add(src)
            args = [a for a in list(cmd.arguments)[1:]
                    if a not in (cmd.filename, "-c", "-o")][:-1]
            try:
                tu = index.parse(src, args=args)
            except cindex.TranslationUnitLoadError:
                continue
            self._index_tu(tu)
        return self.program

    def _rel(self, location) -> Optional[str]:
        if not location.file:
            return None
        p = pathlib.Path(location.file.name).resolve()
        try:
            return p.relative_to(self.root).as_posix()
        except ValueError:
            return None

    def _index_tu(self, tu) -> None:
        ck = self.cindex.CursorKind
        prog = self.program

        def walk(cursor):
            for child in cursor.get_children():
                rel = self._rel(child.location)
                if rel is None:
                    continue
                if child.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) \
                        and child.is_definition():
                    members = prog.member_types.setdefault(
                        child.spelling, {})
                    for f in child.get_children():
                        if f.kind == ck.FIELD_DECL:
                            members[f.spelling] = f.type.spelling
                if child.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                                  ck.CONSTRUCTOR, ck.DESTRUCTOR,
                                  ck.FUNCTION_TEMPLATE):
                    prog.return_types.setdefault(
                        child.spelling, child.result_type.spelling or "")
                    if child.is_definition():
                        key = f"{rel}:{child.location.line}:" \
                              f"{self._qname(child)}"
                        if key not in self._fn_seen:
                            self._fn_seen.add(key)
                            self._index_function(child, rel)
                walk(child)

        self._fn_seen: Set[str] = getattr(self, "_fn_seen", set())
        walk(tu.cursor)

    def _qname(self, cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.spelling:
            if c.kind in (self.cindex.CursorKind.TRANSLATION_UNIT,):
                break
            parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _index_function(self, cursor, rel: str) -> None:
        ck = self.cindex.CursorKind
        cls = None
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (ck.CLASS_DECL,
                                                  ck.STRUCT_DECL):
            cls = parent.spelling
        fn = FunctionModel(self._qname(cursor), cls, rel,
                           cursor.location.line)
        pos = [0]

        def visit(node, open_sites):
            # A MutexLock's scope closes with its innermost enclosing
            # compound statement; scope_end is patched when that compound
            # finishes visiting, so it lives in the same pos-counter units
            # as every CallSite (the rules compare the two directly).
            scope_sites = [] if node.kind == ck.COMPOUND_STMT else open_sites
            for child in node.get_children():
                pos[0] += 1
                k = child.kind
                if k == ck.VAR_DECL and "MutexLock" in child.type.spelling:
                    site = AcquireSite(self._mutex_arg(child, cls),
                                       child.location.line, pos[0], pos[0])
                    fn.acquires.append(site)
                    scope_sites.append(site)
                if k == ck.CALL_EXPR:
                    name = child.spelling or ""
                    recv_type = None
                    kids = list(child.get_children())
                    if kids and kids[0].kind == ck.MEMBER_REF_EXPR:
                        base = list(kids[0].get_children())
                        if base:
                            bt = base[0].type.spelling
                            recv_type = re.sub(
                                r"\bconst\b|[*&]", "", bt).strip() \
                                .split("<")[0].rsplit("::", 1)[-1]
                    if name:
                        args = {c.spelling for c in child.walk_preorder()
                                if c.kind == ck.DECL_REF_EXPR
                                and c.spelling}
                        fn.calls.append(CallSite(
                            name, recv_type, child.location.line, pos[0],
                            args))
                    if name in REGISTRATION_METHODS \
                            and recv_type in LOOP_RECEIVER_TYPES:
                        # The registered callback (lambda argument) spans
                        # the rest of this call's subtree, so its acquires
                        # and calls land in (start, pos-after-subtree].
                        start = pos[0]
                        visit(child, scope_sites)
                        fn.registrations.append(Registration(
                            name, recv_type, child.location.line,
                            start + 1, pos[0] + 1))
                        continue
                if k == ck.CXX_FOR_RANGE_STMT:
                    kids = list(child.get_children())
                    if len(kids) >= 2 and "unordered_" in \
                            kids[-2].type.spelling:
                        start = pos[0]
                        loop = UnorderedLoop(kids[-2].type.spelling,
                                             child.location.line, start,
                                             start)
                        fn.unordered_loops.append(loop)
                        visit(child, scope_sites)
                        loop.body_end = pos[0]
                        continue
                if k == ck.VAR_DECL and re.match(
                        r"^(?:medsync::)?(?:common::)?(Status|Result<)",
                        child.type.spelling):
                    fn.status_bindings.append(StatusBinding(
                        child.spelling, child.location.line, pos[0]))
                if k == ck.DECL_REF_EXPR:
                    fn.tokens.append(Tok("id", child.spelling,
                                         child.location.line))
                visit(child, scope_sites)
            if node.kind == ck.COMPOUND_STMT:
                for site in scope_sites:
                    site.scope_end = pos[0]

        body = None
        for child in cursor.get_children():
            if child.kind == ck.COMPOUND_STMT:
                body = child
        if body is not None:
            visit(body, [])
        self.program.add(fn)

    def _mutex_arg(self, var_decl, cls) -> str:
        for child in var_decl.get_children():
            for ref in child.walk_preorder():
                if ref.kind == self.cindex.CursorKind.MEMBER_REF_EXPR \
                        or ref.kind == self.cindex.CursorKind.DECL_REF_EXPR:
                    owner = ref.semantic_parent
                    return f"{cls or '?'}::{ref.spelling}"
        return f"{cls or '?'}::<unknown>"


# ---------------------------------------------------------------------------
# Rules.
# ---------------------------------------------------------------------------


class Analyzer:
    def __init__(self, program: Program):
        self.prog = program
        self._acquired_memo: Dict[str, Dict[str, List[str]]] = {}
        self._blocking_memo: Dict[str, Optional[List[str]]] = {}
        self._sink_memo: Dict[str, Optional[List[str]]] = {}
        self._blocking_mutexes = self._find_blocking_mutexes()

    # -- shared reachability helpers ----------------------------------------

    def _acquired_in(self, fn: FunctionModel,
                     stack: Set[str]) -> Dict[str, List[str]]:
        """mutex -> witness path (list of 'qname (file:line)') for every
        mutex this function may acquire, transitively."""
        if fn.qname in self._acquired_memo:
            return self._acquired_memo[fn.qname]
        if fn.qname in stack:
            return {}
        stack.add(fn.qname)
        acquired: Dict[str, List[str]] = {}
        for site in fn.acquires:
            acquired.setdefault(
                site.mutex,
                [f"{fn.qname} acquires {site.mutex} "
                 f"({fn.file}:{site.line})"])
        for call in fn.calls:
            for callee in self.prog.resolve(call, fn):
                if callee.qname == fn.qname:
                    continue
                sub = self._acquired_in(callee, stack)
                for mutex, path in sub.items():
                    if mutex not in acquired and len(path) < \
                            MAX_WITNESS_DEPTH:
                        acquired[mutex] = [
                            f"{fn.qname} calls {callee.qname} "
                            f"({fn.file}:{call.line})"] + path
        stack.discard(fn.qname)
        self._acquired_memo[fn.qname] = acquired
        return acquired

    def _reaches(self, fn: FunctionModel, memo: Dict[str,
                                                     Optional[List[str]]],
                 hit_fn, stack: Set[str]) -> Optional[List[str]]:
        """Witness path to the first call satisfying hit_fn(callsite),
        searched transitively; None if unreachable."""
        if fn.qname in memo:
            return memo[fn.qname]
        if fn.qname in stack:
            return None
        stack.add(fn.qname)
        result: Optional[List[str]] = None
        for call in fn.calls:
            hit = hit_fn(call, fn)
            if hit:
                result = [f"{fn.qname} calls {hit} ({fn.file}:{call.line})"]
                break
        if result is None:
            for call in fn.calls:
                for callee in self.prog.resolve(call, fn):
                    if callee.qname == fn.qname:
                        continue
                    sub = self._reaches(callee, memo, hit_fn, stack)
                    if sub is not None and len(sub) < MAX_WITNESS_DEPTH:
                        result = [f"{fn.qname} calls {callee.qname} "
                                  f"({fn.file}:{call.line})"] + sub
                        break
                if result:
                    break
        stack.discard(fn.qname)
        memo[fn.qname] = result
        return result

    # -- MS101 ---------------------------------------------------------------

    def ms101_lock_order(self) -> List[Finding]:
        edges: Dict[Tuple[str, str], List[str]] = {}
        for fn in self.prog.functions:
            for site in fn.acquires:
                held = site.mutex
                # Later direct acquisitions inside this scope.
                for other in fn.acquires:
                    if other.pos > site.pos and other.pos <= site.scope_end:
                        key = (held, other.mutex)
                        edges.setdefault(key, [
                            f"{fn.qname} acquires {held} "
                            f"({fn.file}:{site.line})",
                            f"{fn.qname} then acquires {other.mutex} "
                            f"({fn.file}:{other.line})"])
                # Acquisitions reached through calls inside the scope.
                for call in fn.calls:
                    if not (site.pos < call.pos <= site.scope_end):
                        continue
                    for callee in self.prog.resolve(call, fn):
                        for mutex, path in self._acquired_in(
                                callee, set()).items():
                            key = (held, mutex)
                            if key not in edges:
                                edges[key] = [
                                    f"{fn.qname} acquires {held} "
                                    f"({fn.file}:{site.line})",
                                    f"{fn.qname} calls {callee.qname} "
                                    f"({fn.file}:{call.line})"] + path
        findings: List[Finding] = []
        graph: Dict[str, Set[str]] = {}
        for (a, b), _ in edges.items():
            graph.setdefault(a, set()).add(b)
        reported: Set[frozenset] = set()
        for (a, b), witness in sorted(edges.items()):
            if a == b:
                loc = self._edge_location(witness)
                findings.append(Finding(
                    "MS101", loc[0], loc[1],
                    f"lock-order: {a} re-acquired while already held — "
                    "threading::Mutex is non-recursive, this self-deadlocks",
                    witness))
                continue
            # Cycle through this edge?
            path = self._find_path(graph, b, a)
            if path is None:
                continue
            cycle_key = frozenset([a, b] + path)
            if cycle_key in reported:
                continue
            reported.add(cycle_key)
            loc = self._edge_location(witness)
            back_witness: List[str] = []
            nodes = [b] + path
            for u, v in zip(nodes, nodes[1:]):
                back_witness.extend(edges.get((u, v), []))
            findings.append(Finding(
                "MS101", loc[0], loc[1],
                "lock-order cycle: " + " -> ".join([a, b] + path) +
                " — two threads taking these locks in opposite orders "
                "deadlock",
                witness + ["-- and the cycle closes: --"] + back_witness))
        return findings

    def _find_path(self, graph: Dict[str, Set[str]], src: str,
                   dst: str) -> Optional[List[str]]:
        """BFS path src ~> dst, returned as the node list after src."""
        from collections import deque
        prev: Dict[str, Optional[str]] = {src: None}
        q = deque([src])
        while q:
            u = q.popleft()
            for v in graph.get(u, ()):
                if v in prev:
                    continue
                prev[v] = u
                if v == dst:
                    path = [v]
                    while prev[path[0]] not in (None, src):
                        path.insert(0, prev[path[0]])
                    return path
                q.append(v)
        return None

    def _edge_location(self, witness: List[str]) -> Tuple[str, int]:
        m = re.search(r"\(([^():]+):(\d+)\)", witness[0])
        if m:
            return m.group(1), int(m.group(2))
        return "?", 0

    # -- MS102 ---------------------------------------------------------------

    def _is_sink(self, call: CallSite, caller: FunctionModel) -> \
            Optional[str]:
        name = call.name.rsplit("::", 1)[-1]
        if (call.recv_type, name) in ORDER_INSENSITIVE_METHODS:
            return None
        if (call.recv_type, name) in SINK_METHODS or \
                (None, name) in SINK_METHODS:
            if (call.recv_type, name) in ORDER_INSENSITIVE_METHODS:
                return None
            return f"sink {call.recv_type + '::' if call.recv_type else ''}" \
                   f"{name}"
        return None

    def ms102_determinism_flow(self) -> List[Finding]:
        findings: List[Finding] = []
        for fn in self.prog.functions:
            for loop in fn.unordered_loops:
                hit: Optional[List[str]] = None
                for call in fn.calls:
                    if not (loop.body_start <= call.pos < loop.body_end):
                        continue
                    direct = self._is_sink(call, fn)
                    if direct:
                        hit = [f"{fn.qname} loop body reaches {direct} "
                               f"({fn.file}:{call.line})"]
                        break
                    for callee in self.prog.resolve(call, fn):
                        sub = self._reaches(callee, self._sink_memo,
                                            self._is_sink, set())
                        if sub is not None:
                            hit = [f"{fn.qname} loop body calls "
                                   f"{callee.qname} ({fn.file}:{call.line})"
                                   ] + sub
                            break
                    if hit:
                        break
                if hit is None:
                    hit = self._unsorted_collection_flow(fn, loop)
                if hit:
                    findings.append(Finding(
                        "MS102", fn.file, loop.line,
                        f"determinism-flow: iteration over unordered "
                        f"container '{loop.container}' reaches an "
                        "order-sensitive sink — hash order is "
                        "implementation-defined and leaks into "
                        "digests/serialized bytes; rebuild in sorted order "
                        "first", hit))
        return findings

    def _unsorted_collection_flow(self, fn: FunctionModel,
                                  loop: UnorderedLoop) -> \
            Optional[List[str]]:
        """Loop collects into a vector that later feeds a sink without an
        intervening sort."""
        for var in loop.out_vars:
            sorted_after = [pos for v, pos in fn.sorted_vars
                            if v == var and pos >= loop.body_end]
            for call in fn.calls:
                if call.pos <= loop.body_end:
                    continue
                if sorted_after and min(sorted_after) < call.pos:
                    break
                # var appears as an argument to a sink call?
                if var not in call.args:
                    continue
                direct = self._is_sink(call, fn)
                if direct:
                    return [f"{fn.qname} collects '{var}' in hash order, "
                            f"then {direct} consumes it unsorted "
                            f"({fn.file}:{call.line})"]
        return None

    # -- MS103 ---------------------------------------------------------------

    def _find_blocking_mutexes(self) -> Dict[str, str]:
        """Mutexes whose critical sections contain a blocking primitive:
        locking them can block for the full blocking duration."""
        blocking: Dict[str, str] = {}
        for fn in self.prog.functions:
            for site in fn.acquires:
                for call in fn.calls:
                    if not (site.pos < call.pos <= site.scope_end):
                        continue
                    hit = self._is_blocking(call, fn)
                    if hit:
                        blocking.setdefault(
                            site.mutex,
                            f"{fn.qname} holds {site.mutex} across {hit} "
                            f"({fn.file}:{call.line})")
        return blocking

    def _is_blocking(self, call: CallSite,
                     caller: FunctionModel) -> Optional[str]:
        name = call.name.rsplit("::", 1)[-1]
        if name in BLOCKING_FREE:
            return f"blocking call {name}()"
        if (call.recv_type, name) in BLOCKING_METHODS:
            return f"blocking wait {call.recv_type}::{name}"
        if call.recv_type is None and name == "Wait":
            # Un-typed receiver: treat known waiter classes' Wait as blocking
            # only when the caller class itself owns one (conservative).
            return f"blocking wait {name}"
        return None

    def _is_blocking_or_slow_lock(self, call: CallSite,
                                  caller: FunctionModel) -> Optional[str]:
        hit = self._is_blocking(call, caller)
        if hit:
            return hit
        return None

    def ms103_loop_blocking(self) -> List[Finding]:
        findings: List[Finding] = []
        for fn in self.prog.functions:
            for reg in fn.registrations:
                # Direct blocking calls and slow-mutex locks in the callback
                # body, then transitive reachability through its calls.
                witness: Optional[List[str]] = None
                for site in fn.acquires:
                    if reg.body_start <= site.pos < reg.body_end and \
                            site.mutex in self._blocking_mutexes:
                        witness = [
                            f"callback locks {site.mutex} "
                            f"({fn.file}:{site.line})",
                            self._blocking_mutexes[site.mutex]]
                        break
                if witness is None:
                    for call in fn.calls:
                        if not (reg.body_start <= call.pos < reg.body_end):
                            continue
                        direct = self._is_blocking(call, fn)
                        if direct:
                            witness = [f"callback reaches {direct} "
                                       f"({fn.file}:{call.line})"]
                            break
                        for callee in self.prog.resolve(call, fn):
                            sub = self._reaches(
                                callee, self._blocking_memo,
                                self._is_blocking_or_slow_lock, set())
                            if sub is not None:
                                witness = [
                                    f"callback calls {callee.qname} "
                                    f"({fn.file}:{call.line})"] + sub
                                break
                        if witness:
                            break
                if witness:
                    findings.append(Finding(
                        "MS103", fn.file, reg.line,
                        f"event-loop-blocking: callback registered via "
                        f"{reg.recv_type}::{reg.kind} in {fn.qname} reaches "
                        "a blocking primitive — a blocked loop thread "
                        "stalls every timer and connection in the process",
                        witness))
        return findings

    # -- MS104 ---------------------------------------------------------------

    def ms104_status_leak(self) -> List[Finding]:
        findings: List[Finding] = []
        for fn in self.prog.functions:
            for binding in fn.status_bindings:
                if self._binding_used(fn, binding):
                    continue
                findings.append(Finding(
                    "MS104", fn.file, binding.line,
                    f"status-leak: '{binding.var}' in {fn.qname} binds a "
                    "Status/Result that is never read — branch on it, "
                    "return it, or discard it by name with "
                    "IgnoreStatusForTest()"))
        return findings

    def _binding_used(self, fn: FunctionModel,
                      binding: StatusBinding) -> bool:
        # Token-level liveness: any appearance of the name after the
        # binding statement counts (branch, return, move, member call, …).
        seen_decl = False
        uses = 0
        for idx, tok in enumerate(fn.tokens):
            if tok.kind != "id" or tok.text != binding.var:
                continue
            if not seen_decl and tok.line == binding.line:
                seen_decl = True
                continue
            if seen_decl or tok.line > binding.line:
                uses += 1
        return uses > 0


# ---------------------------------------------------------------------------
# Allowlist + driver.
# ---------------------------------------------------------------------------


def load_allowlist(path: pathlib.Path) -> List[Tuple[str, str, str]]:
    entries: List[Tuple[str, str, str]] = []
    if not path.exists():
        return entries
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, rationale = line.partition("#")
        parts = body.split(None, 1)
        if len(parts) == 2 and rationale.strip():
            entries.append((parts[0], parts[1].strip(), rationale.strip()))
        elif len(parts) == 2:
            print(f"medsync-sca: allowlist entry without rationale "
                  f"ignored: {line}", file=sys.stderr)
    return entries


def apply_suppressions(findings: List[Finding], program: Program,
                       allowlist: List[Tuple[str, str, str]]) -> \
        Tuple[List[Finding], int]:
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        inline = program.suppressions.get((finding.file, finding.line),
                                          set())
        if finding.rule in inline:
            suppressed += 1
            continue
        hay = finding.haystack()
        if any(rule == finding.rule and pattern in hay
               for rule, pattern, _ in allowlist):
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


def collect_sources(root: pathlib.Path) -> List[str]:
    rels: List[str] = []
    for top in ("src", "tools", "examples", "tests", "bench"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cc", ".h") and "fixtures" not in str(path):
                rels.append(path.relative_to(root).as_posix())
    return rels


def sarif_dump(findings: List[Finding]) -> str:
    rules_meta = {
        "MS101": "lock-order cycle (potential deadlock)",
        "MS102": "unordered iteration reaches an order-sensitive sink",
        "MS103": "blocking primitive reachable from an event-loop callback",
        "MS104": "Status/Result bound to a variable that is never read",
    }
    results = []
    for f in findings:
        message = f.message
        if f.witness:
            message += "\n" + "\n".join(f.witness)
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.file},
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
        })
    doc = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "medsync-sca",
                "rules": [{"id": rid,
                           "shortDescription": {"text": text}}
                          for rid, text in sorted(rules_meta.items())],
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)


def build_program(root: pathlib.Path, frontend: str,
                  build_dir: Optional[pathlib.Path],
                  rel_paths: Optional[Sequence[str]] = None) -> \
        Tuple[Optional[Program], str]:
    """Returns (program, frontend_used). program None = hard unavailability
    of an explicitly requested frontend."""
    rels = list(rel_paths) if rel_paths is not None else \
        collect_sources(root)
    if frontend in ("clang", "auto"):
        try:
            import clang.cindex  # noqa: F401
            have_clang = True
        except ImportError:
            have_clang = False
        if have_clang and build_dir is not None and \
                (build_dir / "compile_commands.json").exists():
            try:
                return ClangFrontend(root, build_dir).build(), "clang"
            except Exception as err:  # pragma: no cover - env-specific
                print(f"medsync-sca: clang frontend failed ({err}); "
                      "falling back to the built-in frontend",
                      file=sys.stderr)
        elif frontend == "clang":
            print("medsync-sca: libclang (python3 clang.cindex) or "
                  "compile_commands.json unavailable — skipping "
                  "(requested --frontend=clang)", file=sys.stderr)
            return None, "none"
        elif frontend == "auto":
            print("medsync-sca: libclang unavailable; using the built-in "
                  "frontend (heuristic types). Install python3-clang for "
                  "the precise frontend.", file=sys.stderr)
    return TextFrontend(root, rels).build(), "text"


def run_rules(program: Program) -> List[Finding]:
    analyzer = Analyzer(program)
    findings: List[Finding] = []
    findings.extend(analyzer.ms101_lock_order())
    findings.extend(analyzer.ms102_determinism_flow())
    findings.extend(analyzer.ms103_loop_blocking())
    findings.extend(analyzer.ms104_status_leak())
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve()
                        .parent.parent)
    parser.add_argument("--build-dir", type=pathlib.Path, default=None,
                        help="build dir holding compile_commands.json "
                             "(default: <root>/build, then "
                             "<root>/build-check)")
    parser.add_argument("--frontend", choices=("auto", "clang", "text"),
                        default="auto")
    parser.add_argument("--allowlist", type=pathlib.Path, default=None,
                        help="default: <root>/tools/sca_allowlist.txt")
    parser.add_argument("--sarif", metavar="FILE", default=None,
                        help="also write SARIF 2.1.0 ('-' = stdout)")
    parser.add_argument("--skip-missing-frontend", action="store_true",
                        help="exit 0 (skip-with-warning) when the requested "
                             "frontend is unavailable")
    opts = parser.parse_args(argv)

    root = opts.root.resolve()
    build_dir = opts.build_dir
    if build_dir is None:
        for cand in (root / "build", root / "build-check"):
            if (cand / "compile_commands.json").exists():
                build_dir = cand
                break
    program, used = build_program(root, opts.frontend, build_dir)
    if program is None:
        return 0 if opts.skip_missing_frontend else 2

    findings = run_rules(program)
    allowlist_path = opts.allowlist or root / "tools" / "sca_allowlist.txt"
    findings, suppressed = apply_suppressions(
        findings, program, load_allowlist(allowlist_path))

    # With --sarif -, stdout must carry pure SARIF JSON; route the
    # human-readable report to stderr so the stream stays parseable.
    human = sys.stderr if opts.sarif == "-" else sys.stdout
    for finding in findings:
        print(finding.render(), file=human)
    if opts.sarif:
        text = sarif_dump(findings)
        if opts.sarif == "-":
            print(text)
        else:
            pathlib.Path(opts.sarif).write_text(text + "\n",
                                                encoding="utf-8")
    note = f" ({suppressed} audited suppression(s))" if suppressed else ""
    if findings:
        print(f"medsync-sca[{used}]: {len(findings)} finding(s){note}",
              file=sys.stderr)
        return 1
    print(f"medsync-sca[{used}]: clean{note}", file=human)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
