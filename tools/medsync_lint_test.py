#!/usr/bin/env python3
"""Self-test for medsync-lint (tools/medsync_lint.py).

Feeds the fixture files under tools/lint_fixtures/ — one per rule — and
asserts the right rule id fires on each, that the clean fixture and the
comment/string decoys stay quiet, and that the real tree lints clean.
Registered with ctest under the `lint` label.
"""

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import medsync_lint  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tools" / "lint_fixtures"


def lint_fixture(name, rel):
    """Lints a fixture file under a masquerade repo-relative path."""
    return medsync_lint.lint_file(FIXTURES / name, rel,
                                  durability_allowlist=set())


def rule_ids(findings):
    return [finding.rule for finding in findings]


class RawThreadRuleTest(unittest.TestCase):
    def test_fires_on_raw_thread_and_async(self):
        findings = lint_fixture("raw_thread.cc", "src/chain/raw_thread.cc")
        self.assertEqual(rule_ids(findings), ["MS001", "MS001"])
        self.assertIn("std::thread", findings[0].message)
        self.assertEqual(findings[0].path, "src/chain/raw_thread.cc")

    def test_allowed_inside_threading_dir(self):
        findings = lint_fixture("raw_thread.cc",
                                "src/common/threading/raw_thread.cc")
        self.assertEqual(findings, [])


class WallClockRuleTest(unittest.TestCase):
    def test_fires_on_system_clock_time_and_rand(self):
        findings = lint_fixture("wall_clock.cc", "src/net/wall_clock.cc")
        self.assertEqual(rule_ids(findings), ["MS002", "MS002", "MS002"])
        messages = " ".join(finding.message for finding in findings)
        self.assertIn("system_clock", messages)
        self.assertIn("rand", messages)
        self.assertIn("time", messages)

    def test_allowed_inside_clock_and_random(self):
        for rel in ("src/common/clock.cc", "src/common/random.cc"):
            self.assertEqual(lint_fixture("wall_clock.cc", rel), [])


class DurabilityRuleTest(unittest.TestCase):
    def test_fires_on_fwrite_and_rename(self):
        findings = lint_fixture("fsyncless_rename.cc",
                                "src/runtime/fsyncless_rename.cc")
        self.assertEqual(rule_ids(findings), ["MS003", "MS003"])
        self.assertIn("fwrite", findings[0].message)
        self.assertIn("rename", findings[1].message)

    def test_allowlisted_file_is_quiet(self):
        findings = medsync_lint.lint_file(
            FIXTURES / "fsyncless_rename.cc",
            "src/relational/wal.cc",
            durability_allowlist={"src/relational/wal.cc"})
        self.assertEqual(findings, [])


class StatusDiscardRuleTest(unittest.TestCase):
    def test_fires_on_void_casts_of_calls_only(self):
        findings = lint_fixture("void_discard.cc", "src/core/void_discard.cc")
        # Three call-expression discards; the variable guard is legal.
        self.assertEqual(rule_ids(findings), ["MS005", "MS005", "MS005"])

    def test_fires_outside_src_too(self):
        findings = lint_fixture("void_discard.cc",
                                "tests/void_discard_test.cc")
        self.assertEqual(rule_ids(findings), ["MS005", "MS005", "MS005"])


class TestLabelRuleTest(unittest.TestCase):
    def test_unlabeled_pool_and_fault_tests_flagged(self):
        tests_dir = FIXTURES / "labels" / "tests"
        findings = medsync_lint.lint_test_labels(
            tests_dir, tests_dir / "CMakeLists.txt")
        self.assertEqual(rule_ids(findings), ["MS004", "MS004"])
        flagged = {finding.message.split("'")[1] for finding in findings}
        self.assertEqual(flagged, {"pool_spawner_test", "fault_toucher_test"})

    def test_label_parser_reads_both_cmake_syntaxes(self):
        tests_dir = FIXTURES / "labels" / "tests"
        labels = medsync_lint.parse_test_labels(
            (tests_dir / "CMakeLists.txt").read_text())
        self.assertEqual(labels["labeled_ok_test"], {"tsan", "fault"})


class PeerFleetRuleTest(unittest.TestCase):
    def test_looped_and_unrolled_fleets_flagged_small_cast_quiet(self):
        findings = medsync_lint.lint_peer_fleets(FIXTURES / "fleets")
        self.assertEqual(rule_ids(findings), ["MS006", "MS006"])
        flagged = {finding.path for finding in findings}
        self.assertEqual(flagged, {"tests/looped_fleet_test.cc",
                                   "tests/unrolled_fleet_test.cc"})
        messages = " ".join(finding.message for finding in findings)
        self.assertIn("in a loop", messages)
        self.assertIn("4 direct Peer constructions", messages)
        self.assertIn("GeneratedScenario", messages)


class DirectChainRuleTest(unittest.TestCase):
    def test_fires_on_stack_unique_and_new_outside_owners(self):
        findings = lint_fixture("direct_chain.cc", "src/core/direct_chain.cc")
        self.assertEqual(rule_ids(findings), ["MS007", "MS007", "MS007"])
        self.assertIn("lane assignment", findings[0].message)

    def test_allowed_inside_chain_runtime_and_their_tests(self):
        for rel in ("src/chain/direct_chain.cc",
                    "src/runtime/direct_chain.cc",
                    "tests/chain_blockchain_test.cc",
                    "bench/bench_chain_core.cc"):
            self.assertEqual(lint_fixture("direct_chain.cc", rel), [])

    def test_fires_in_non_chain_tests_and_benches(self):
        for rel in ("tests/core_direct_chain_test.cc",
                    "bench/bench_scalability.cc",
                    "examples/direct_chain.cc"):
            self.assertEqual(rule_ids(lint_fixture("direct_chain.cc", rel)),
                             ["MS007", "MS007", "MS007"], rel)


class DirectRowsRuleTest(unittest.TestCase):
    def test_fires_on_layout_access_outside_relational(self):
        findings = lint_fixture("direct_rows.cc", "src/core/direct_rows.cc")
        self.assertEqual(rule_ids(findings), ["MS008"] * 5)
        self.assertIn("scan()", findings[0].message)

    def test_head_decoy_and_comment_stay_quiet(self):
        findings = lint_fixture("direct_rows.cc", "src/core/direct_rows.cc")
        # Exactly the five layout accesses — the blockchain head() decoy and
        # the comment mentioning table.chunks() contribute nothing.
        self.assertEqual(len(findings), 5)

    def test_allowed_inside_relational_layer_tests_and_bench(self):
        for rel in ("src/relational/direct_rows.cc",
                    "tests/relational_storage_scale_test.cc",
                    "bench/bench_storage.cc"):
            self.assertEqual(lint_fixture("direct_rows.cc", rel), [], rel)


class RawSocketRuleTest(unittest.TestCase):
    def test_fires_on_socket_syscalls_and_raw_fd_io(self):
        findings = lint_fixture("raw_socket.cc", "src/core/raw_socket.cc")
        self.assertEqual(rule_ids(findings), ["MS009"] * 4)
        flagged = [finding.message.split("'")[1] for finding in findings]
        self.assertEqual(flagged, ["socket", "connect", "read", "::write"])
        self.assertIn("SocketTransport", findings[0].message)

    def test_allowed_inside_net_layer(self):
        findings = lint_fixture("raw_socket.cc", "src/net/raw_socket.cc")
        self.assertEqual(findings, [])

    def test_tests_may_open_raw_sockets(self):
        # The equivalence/corruption tests attack the transport from outside
        # with a raw client socket; the rule is scoped to src/.
        findings = lint_fixture("raw_socket.cc",
                                "tests/net_socket_equivalence_test.cc")
        self.assertEqual(findings, [])

    def test_durability_files_keep_file_io_but_not_sockets(self):
        findings = medsync_lint.lint_file(
            FIXTURES / "raw_socket.cc", "src/relational/wal.cc",
            durability_allowlist={"src/relational/wal.cc"})
        # read()/write() are the audited WAL I/O; socket()/connect() still
        # have no business in a durability file.
        self.assertEqual([finding.message.split("'")[1]
                          for finding in findings],
                         ["socket", "connect"])


class CleanFixtureTest(unittest.TestCase):
    def test_decoys_do_not_fire(self):
        self.assertEqual(lint_fixture("clean.cc", "src/core/clean.cc"), [])


class CommentAndLiteralStrippingTest(unittest.TestCase):
    """MS002/MS005 (and every other per-file rule) must not fire on code
    that only exists inside comments or string literals — including the
    two historical blind spots: raw strings and backslash-continued line
    comments."""

    def test_commented_out_code_is_invisible(self):
        findings = lint_fixture("commented_decoys.cc",
                                "src/core/commented_decoys.cc")
        self.assertEqual(findings, [],
                         "\n".join(str(f) for f in findings))

    def test_strip_code_blanks_raw_strings(self):
        stripped = medsync_lint.strip_code(
            'auto x = R"(rand() (void) Foo();)";\n')
        self.assertNotIn("rand", stripped)
        self.assertNotIn("(void)", stripped)
        # Newlines and surrounding code survive.
        self.assertIn("auto x =", stripped)

    def test_strip_code_blanks_delimited_raw_strings(self):
        stripped = medsync_lint.strip_code(
            'auto x = R"seq(time(nullptr) )" still inside)seq";\nint y;')
        self.assertNotIn("time", stripped)
        self.assertNotIn("still inside", stripped)
        self.assertIn("int y;", stripped)

    def test_strip_code_follows_line_comment_continuations(self):
        stripped = medsync_lint.strip_code(
            "int a;  // comment continues \\\n srand(7);\nint b;\n")
        self.assertNotIn("srand", stripped)
        self.assertIn("int a;", stripped)
        self.assertIn("int b;", stripped)

    def test_line_count_is_preserved(self):
        text = ('// a \\\n b\nR"x(\nmulti\nline\n)x" int tail;\n')
        self.assertEqual(medsync_lint.strip_code(text).count("\n"),
                         text.count("\n"))


class CleanTreeTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        findings = medsync_lint.run_lint(REPO_ROOT)
        self.assertEqual(findings, [],
                         "\n".join(str(finding) for finding in findings))


if __name__ == "__main__":
    unittest.main()
