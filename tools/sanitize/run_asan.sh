#!/usr/bin/env bash
# One-shot AddressSanitizer pass: configure + build + full ctest suite with
# leak detection on. Usage: tools/sanitize/run_asan.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DMEDSYNC_SANITIZE=address
cmake --build "$BUILD_DIR" -j"$(nproc)"
# abort_on_error makes a finding fail the ctest, not just print.
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
