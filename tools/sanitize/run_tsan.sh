#!/usr/bin/env bash
# One-shot ThreadSanitizer pass over the concurrency suite (ctest -L tsan).
# Usage: tools/sanitize/run_tsan.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DMEDSYNC_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -L tsan -j"$(nproc)"
