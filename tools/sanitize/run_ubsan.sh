#!/usr/bin/env bash
# One-shot UndefinedBehaviorSanitizer pass: configure + build + full ctest
# suite. The build uses -fno-sanitize-recover, so the first UB report aborts
# the offending test. Usage: tools/sanitize/run_ubsan.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build-ubsan}"

cmake -B "$BUILD_DIR" -S . -DMEDSYNC_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j"$(nproc)"
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
