// medsync-lint MS008 fixture: direct access to Table's two-tier storage
// layout outside src/relational/. The range-for over head(), the
// chunks()/tombstones()/dead_count() accessors, and the resurrected rows_
// member must each fire; the chain::Blockchain::head() decoy and this
// comment mentioning table.chunks() must stay quiet.
#include "chain/blockchain.h"
#include "relational/table.h"

namespace medsync {

size_t CountLayoutTheWrongWay(const relational::Table& table,
                              const chain::Blockchain& chain) {
  size_t n = 0;
  for (const auto& [key, row] : table.head()) {
    n += row.size();
  }
  n += table.chunks().size();
  n += table.tombstones().size();
  n += table.dead_count();
  n += chain.head().header.height;  // decoy: not a layout access
  return n;
}

struct Resurrected {
  std::vector<int> rows_;
};

}  // namespace medsync
