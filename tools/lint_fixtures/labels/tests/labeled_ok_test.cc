// medsync-lint fixture: spawns a pool AND touches the injector, but the
// sibling CMakeLists labels it tsan + fault -> no MS004 finding.
#include "common/fault_injector.h"
#include "common/threading/thread_pool.h"

void CoveredEverywhere() {
  medsync::threading::ThreadPool pool(2);
  medsync::FaultInjector injector;
}
