// medsync-lint fixture: a test that arms the FaultInjector but whose
// CMakeLists (sibling file) gives it no `fault` label -> MS004.
#include "common/fault_injector.h"

void UsesInjector() {
  medsync::FaultInjector injector;
  injector.Visit("site");
}
