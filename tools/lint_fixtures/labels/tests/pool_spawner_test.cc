// medsync-lint fixture: a test that spawns a ThreadPool but whose
// CMakeLists (sibling file) gives it no `tsan` label -> MS004.
#include "common/threading/thread_pool.h"

void UsesPool() {
  medsync::threading::ThreadPool pool(2);
  pool.Submit([] {});
}
