// medsync-lint fixture: violates nothing. The self-test asserts zero
// findings here even under a src/ masquerade path.
#include <chrono>

int Add(int a, int b) { return a + b; }
// Monotonic time and comment-only mentions of std::thread / rand() / rename
// must not fire.
auto Monotonic() { return std::chrono::steady_clock::now(); }

void GuardedDiscard() {
  int checked_in_assert = Add(1, 2);
  (void)checked_in_assert;
}
