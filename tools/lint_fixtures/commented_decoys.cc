// medsync-lint fixture: every banned pattern below lives inside a
// comment or a literal, so NO rule may fire on this file. Each decoy
// targets a stripping blind spot: plain comments, block comments,
// backslash-continued line comments, plain strings, and raw strings.
#include <string>

// Commented-out wall-clock code must not trip MS002:
//   auto now = std::chrono::system_clock::now();
//   int noise = rand();

/* Block-commented discard must not trip MS005:
   (void) DangerousCall();
   and neither must a block-commented raw socket: socket(AF_INET, 0, 0);
*/

// A line comment continued with a backslash hides its next line too: \
   (void) StillInsideTheComment(); std::chrono::system_clock::now();

int Decoys() {
  // The banned tokens below are DATA, not code.
  std::string plain =
      "(void) NotACall(); rand(); std::chrono::system_clock::now();";
  std::string raw = R"lint(
      (void) NotACallEither();
      time(nullptr); srand(42);
      std::thread worker;  // even "commented" code inside a raw string
  )lint";
  return static_cast<int>(plain.size() + raw.size());
}
