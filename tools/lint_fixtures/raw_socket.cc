// medsync-lint fixture: violates MS009 (raw socket syscalls / raw fd I/O
// outside src/net/). Never compiled.
#include <sys/socket.h>
#include <unistd.h>

int OpensRawSocket(const void* addr, unsigned len) {
  int fd = socket(2, 1, 0);              // MS009
  connect(fd, nullptr, 0);               // MS009
  char buffer[16];
  long got = read(fd, buffer, sizeof(buffer));   // MS009
  long put = ::write(fd, addr, len);             // MS009
  return fd + static_cast<int>(got + put);
}

// Member calls and qualified names merely NAMED like the syscalls must not
// fire: framing lives behind these methods, which is exactly the point.
struct Conn;
long UsesTransport(Conn& conn, Conn* stream, char* out) {
  long got = conn.read(out, 8);
  long fwd = stream->send(out, got);
  return got + fwd + wal::write(out, 4) + stream->poll(0);
}
// Identifiers merely CONTAINING the banned names must not fire either.
long preread_bytes(long n) { return n; }
long do_send_all(long n) { return n; }
// "a socket( in a string" and socket( in this comment stay quiet too.
const char* kDoc = "call socket( then read( the reply";
