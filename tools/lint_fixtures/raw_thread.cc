// medsync-lint fixture: violates MS001 (raw thread spawn outside
// src/common/threading/). Never compiled; scanned by the lint self-test
// under the masquerade path src/chain/raw_thread.cc.
#include <future>
#include <thread>

void SpawnsRawThread() {
  std::thread worker([] {});  // MS001
  worker.join();
  auto pending = std::async([] { return 1; });  // MS001
  pending.get();
}

// A mention of std::thread in a comment or "std::thread" in a string must
// NOT fire — the linter strips comments and literals first.
const char* kDoc = "std::thread is banned here";
