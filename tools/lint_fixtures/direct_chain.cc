// Fixture for MS007: direct Blockchain construction outside the chain
// layer. Three real construction sites plus decoys that must stay quiet.
#include <memory>

namespace medsync {

void BuildsChainsDirectly() {
  chain::Blockchain local(genesis, &sealer);               // fires
  auto owned = std::make_unique<chain::Blockchain>(g, &s);  // fires
  auto* raw = new chain::Blockchain(g, &s);                 // fires

  // Decoys: references, accessors, and member declarations stay legal.
  const chain::Blockchain& head = node.blockchain(0);
  chain::Blockchain* pointer = &head_chain;
  // chain::Blockchain commented(genesis, &sealer);  — comments are stripped
  const char* text = "chain::Blockchain quoted(genesis)";
}

}  // namespace medsync
