// medsync-lint fixture: violates MS003 (fwrite/rename in a file not on
// tools/durability_allowlist.txt). Never compiled.
#include <cstdio>

void TornWriteWaitingToHappen(const char* tmp, const char* path) {
  FILE* file = fopen(tmp, "wb");
  char byte = 1;
  fwrite(&byte, 1, 1, file);  // MS003: no fsync protocol in this file
  fclose(file);
  std::rename(tmp, path);  // MS003
}
