// MS006 fixture: up to three direct Peers outside any loop is legal — the
// clinic-plus-one-extra idiom the existing tests use.
#include "core/peer.h"

void BuildSmallCast() {
  auto extra = std::make_unique<core::Peer>(core::PeerConfig{}, nullptr,
                                            nullptr, nullptr);
  auto other = std::make_unique<core::Peer>(core::PeerConfig{}, nullptr,
                                            nullptr, nullptr);
  // A loop that does NOT construct peers must not count as a fleet.
  for (int i = 0; i < 3; ++i) {
    extra->Start();
  }
  auto third = std::make_unique<core::Peer>(core::PeerConfig{}, nullptr,
                                            nullptr, nullptr);
}
