// MS006 fixture: a Peer constructed inside a loop — a hand-rolled fleet.
#include "core/peer.h"

void BuildFleet() {
  std::vector<std::unique_ptr<core::Peer>> peers;
  for (size_t i = 0; i < 10; ++i) {
    core::PeerConfig config;
    peers.push_back(
        std::make_unique<core::Peer>(config, nullptr, nullptr, nullptr));
  }
}
