// MS006 fixture: four direct Peer constructions, no loop — still a fleet.
#include "core/peer.h"

void BuildFleet() {
  auto a = std::make_unique<core::Peer>(core::PeerConfig{}, nullptr, nullptr,
                                        nullptr);
  auto b = std::make_unique<Peer>(core::PeerConfig{}, nullptr, nullptr,
                                  nullptr);
  auto c = new core::Peer(core::PeerConfig{}, nullptr, nullptr, nullptr);
  auto d = new Peer(core::PeerConfig{}, nullptr, nullptr, nullptr);
}
