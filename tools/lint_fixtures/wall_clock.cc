// medsync-lint fixture: violates MS002 (wall clock / libc randomness
// outside common/clock / common/random). Never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>

long ReadsWallClock() {
  auto now = std::chrono::system_clock::now();  // MS002
  (void)now;
  int noise = rand();  // MS002
  return noise + time(nullptr);  // MS002
}

// steady_clock is fine: monotonic, not wall time.
auto Monotonic() { return std::chrono::steady_clock::now(); }
// Identifiers merely CONTAINING the banned names must not fire.
int runtime_ = 0;
int duration_rand_bound(int upper) { return upper; }
