// medsync-lint fixture: violates MS005 ((void) cast of a call expression).
// Never compiled.
struct Status {
  static Status OK();
};
Status DoWork();

struct Worker {
  Status Run();
};

void DropsStatuses(Worker* worker) {
  (void)DoWork();  // MS005
  Worker local;
  (void)local.Run();  // MS005
  (void)worker->Run();  // MS005

  // Legal: (void) on a plain variable is the assert-guard idiom.
  int used_only_in_asserts = 0;
  (void)used_only_in_asserts;
}
