#!/usr/bin/env python3
"""Self-tests for tools/medsync_sca.py.

Same contract as medsync_lint_test.py: every rule must (a) fire on the
fixture that violates it and (b) stay silent on the corrected form, so a
regression in either direction — a rule that stops catching the bug, or a
rule that starts flagging the sanctioned idiom — fails this suite. The
fixtures live in tools/sca_fixtures/ and are analyzed with the built-in
text frontend so the suite runs in containers without libclang.
"""

import json
import pathlib
import sys
import unittest

TOOLS = pathlib.Path(__file__).resolve().parent
REPO_ROOT = TOOLS.parent
FIXTURES = TOOLS / "sca_fixtures"
sys.path.insert(0, str(TOOLS))

import medsync_sca as sca  # noqa: E402


def analyze(*names, allowlist=()):
    """Runs all rules over the named fixtures as one program (cross-file
    resolution included), applying only the given allowlist entries."""
    program = sca.TextFrontend(FIXTURES, list(names)).build()
    findings = sca.run_rules(program)
    findings, suppressed = sca.apply_suppressions(
        findings, program, list(allowlist))
    return findings, suppressed


def rules_of(findings):
    return [f.rule for f in findings]


class Ms101LockOrderTest(unittest.TestCase):
    def test_fires_on_cross_tu_cycle(self):
        findings, _ = analyze("ms101_cycle_a.cc", "ms101_cycle_b.cc")
        self.assertIn("MS101", rules_of(findings))
        cycle = next(f for f in findings if f.rule == "MS101")
        self.assertIn("LockA::mu_", cycle.message)
        self.assertIn("LockB::mu_", cycle.message)
        # The witness must span both translation units.
        witness = "\n".join(cycle.witness)
        self.assertIn("ms101_cycle_a.cc", witness)
        self.assertIn("ms101_cycle_b.cc", witness)

    def test_fires_on_self_deadlock(self):
        findings, _ = analyze("ms101_self_deadlock.cc")
        self.assertEqual(rules_of(findings), ["MS101"])
        self.assertIn("re-acquired", findings[0].message)
        self.assertIn("SelfLocker::mu_", findings[0].message)

    def test_silent_on_consistent_order(self):
        findings, _ = analyze("ms101_clean.cc")
        self.assertEqual(findings, [],
                         [f.render() for f in findings])

    def test_silent_when_only_one_direction_exists(self):
        # Half a cycle is a legal order, not a deadlock.
        findings, _ = analyze("ms101_cycle_a.cc")
        self.assertNotIn("MS101", [f.rule for f in findings
                                   if "cycle" in f.message])


class Ms102DeterminismFlowTest(unittest.TestCase):
    def test_fires_direct_and_transitive(self):
        findings, _ = analyze("ms102_unordered_sink.cc")
        ms102 = [f for f in findings if f.rule == "MS102"]
        self.assertEqual(len(ms102), 2, [f.render() for f in findings])
        witness = "\n".join(ms102[0].witness + ms102[1].witness)
        self.assertIn("Append", witness)   # direct sink
        self.assertIn("FoldOne", witness)  # transitive through the helper

    def test_fires_on_unsorted_collect_then_sink(self):
        # The loop body itself never reaches a sink; the vector it fills
        # in hash order does, with no sort in between.
        findings, _ = analyze("ms102_collect_unsorted.cc")
        ms102 = [f for f in findings if f.rule == "MS102"]
        self.assertEqual(len(ms102), 1, [f.render() for f in findings])
        witness = "\n".join(ms102[0].witness)
        self.assertIn("collects 'rows'", witness)
        self.assertIn("Serialize", witness)

    def test_silent_on_corrected_forms(self):
        findings, _ = analyze("ms102_clean.cc")
        self.assertEqual(findings, [],
                         [f.render() for f in findings])


class Ms103LoopBlockingTest(unittest.TestCase):
    def test_fires_on_blocking_callbacks(self):
        findings, _ = analyze("ms103_blocking_loop.cc")
        ms103 = [f for f in findings if f.rule == "MS103"]
        self.assertEqual(len(ms103), 2, [f.render() for f in findings])
        witness = "\n".join(ms103[0].witness + ms103[1].witness)
        self.assertIn("fsync", witness)
        self.assertIn("Wait", witness)

    def test_silent_on_nonblocking_and_inline_suppressed(self):
        findings, suppressed = analyze("ms103_clean.cc")
        self.assertEqual(findings, [],
                         [f.render() for f in findings])
        self.assertEqual(suppressed, 1)  # the inline-audited checkpoint

    def test_allowlist_suppresses_with_rationale(self):
        entry = ("MS103", "BlockingServer::SyncFile",
                 "fixture: audited durability fsync")
        findings, suppressed = analyze("ms103_blocking_loop.cc",
                                       allowlist=[entry])
        self.assertEqual(suppressed, 1)
        self.assertEqual(len(findings), 1)  # the CondVar::Wait one remains

    def test_allowlist_is_rule_scoped(self):
        # An MS104 entry must not silence an MS103 finding even if the
        # substring matches.
        entry = ("MS104", "BlockingServer", "wrong rule on purpose")
        findings, suppressed = analyze("ms103_blocking_loop.cc",
                                       allowlist=[entry])
        self.assertEqual(suppressed, 0)
        self.assertEqual(len(findings), 2)


class Ms104StatusLeakTest(unittest.TestCase):
    def test_fires_on_named_and_auto_bindings(self):
        findings, _ = analyze("ms104_leak.cc")
        ms104 = [f for f in findings if f.rule == "MS104"]
        self.assertEqual(len(ms104), 2, [f.render() for f in findings])
        leaked = {f.message.split("'")[1] for f in ms104}
        self.assertEqual(leaked, {"ignored", "outcome"})

    def test_silent_on_all_consumption_idioms(self):
        findings, _ = analyze("ms104_clean.cc")
        self.assertEqual(findings, [],
                         [f.render() for f in findings])


class SarifOutputTest(unittest.TestCase):
    def test_sarif_is_valid_and_carries_findings(self):
        findings, _ = analyze("ms104_leak.cc")
        doc = json.loads(sca.sarif_dump(findings))
        self.assertEqual(doc["version"], "2.1.0")
        driver = doc["runs"][0]["tool"]["driver"]
        self.assertEqual(driver["name"], "medsync-sca")
        self.assertEqual({r["id"] for r in driver["rules"]},
                         {"MS101", "MS102", "MS103", "MS104"})
        results = doc["runs"][0]["results"]
        self.assertEqual(len(results), 2)
        for result in results:
            self.assertEqual(result["ruleId"], "MS104")
            loc = result["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uri"],
                             "ms104_leak.cc")
            self.assertGreater(loc["region"]["startLine"], 0)

    def test_empty_findings_is_still_valid_sarif(self):
        doc = json.loads(sca.sarif_dump([]))
        self.assertEqual(doc["runs"][0]["results"], [])


class AllowlistFileTest(unittest.TestCase):
    def test_real_allowlist_parses_and_every_entry_has_rationale(self):
        entries = sca.load_allowlist(TOOLS / "sca_allowlist.txt")
        self.assertGreater(len(entries), 0)
        for rule, pattern, rationale in entries:
            self.assertRegex(rule, r"^MS\d{3}$")
            self.assertTrue(pattern)
            self.assertTrue(rationale, f"entry {pattern} lacks a rationale")

    def test_entry_without_rationale_is_rejected(self):
        import tempfile
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as tmp:
            tmp.write("MS103 SomePattern\n")
            path = pathlib.Path(tmp.name)
        try:
            self.assertEqual(sca.load_allowlist(path), [])
        finally:
            path.unlink()


class _FakeCursor:
    """Minimal stand-in for a clang.cindex Cursor: kind, spelling, type,
    location, children. Lets the ClangFrontend AST walk run in containers
    without libclang."""

    def __init__(self, kind, spelling="", type_spelling="", line=1,
                 children=(), parent=None):
        from types import SimpleNamespace
        self.kind = kind
        self.spelling = spelling
        self.type = SimpleNamespace(spelling=type_spelling)
        self.location = SimpleNamespace(line=line, file=None)
        self.semantic_parent = parent
        self._children = list(children)

    def get_children(self):
        return list(self._children)

    def walk_preorder(self):
        yield self
        for child in self._children:
            yield from child.walk_preorder()


class ClangFrontendModelTest(unittest.TestCase):
    """The clang frontend must produce the same program-model shapes the
    rules consume: event-loop registrations (MS103's input — regression
    for the frontend that recorded none) and lock scopes in pos-counter
    units (regression for scope_end = line*1000, which over-approximated
    every MS101 scope)."""

    def _frontend(self):
        from types import SimpleNamespace
        kinds = SimpleNamespace(**{name: object() for name in (
            "CLASS_DECL", "STRUCT_DECL", "FUNCTION_DECL", "CXX_METHOD",
            "CONSTRUCTOR", "DESTRUCTOR", "FUNCTION_TEMPLATE",
            "TRANSLATION_UNIT", "COMPOUND_STMT", "DECL_STMT", "VAR_DECL",
            "CALL_EXPR", "MEMBER_REF_EXPR", "DECL_REF_EXPR",
            "CXX_FOR_RANGE_STMT", "LAMBDA_EXPR", "UNEXPOSED_EXPR")})
        frontend = sca.ClangFrontend.__new__(sca.ClangFrontend)
        frontend.cindex = SimpleNamespace(CursorKind=kinds)
        frontend.root = FIXTURES
        frontend.program = sca.Program()
        return frontend, kinds

    def _indexed_server_start(self):
        """Models `void Server::Start() { loop_->Schedule([]{ fsync(fd); });
        MutexLock l(&mu_); DoThing(); }` and runs _index_function on it."""
        frontend, ck = self._frontend()
        loop_ref = _FakeCursor(ck.MEMBER_REF_EXPR, "Schedule", children=[
            _FakeCursor(ck.DECL_REF_EXPR, "loop_", "net::EventLoop *")])
        lam = _FakeCursor(ck.LAMBDA_EXPR, children=[
            _FakeCursor(ck.COMPOUND_STMT, children=[
                _FakeCursor(ck.CALL_EXPR, "fsync", line=3, children=[
                    _FakeCursor(ck.DECL_REF_EXPR, "fd")])])])
        schedule = _FakeCursor(ck.CALL_EXPR, "Schedule", line=2,
                               children=[loop_ref, lam])
        lock = _FakeCursor(ck.DECL_STMT, children=[
            _FakeCursor(ck.VAR_DECL, "l", "threading::MutexLock", line=5,
                        children=[_FakeCursor(ck.UNEXPOSED_EXPR, children=[
                            _FakeCursor(ck.MEMBER_REF_EXPR, "mu_")])])])
        tail_call = _FakeCursor(ck.CALL_EXPR, "DoThing", line=6)
        body = _FakeCursor(ck.COMPOUND_STMT,
                           children=[schedule, lock, tail_call])
        cls = _FakeCursor(ck.CLASS_DECL, "Server")
        fn_cursor = _FakeCursor(ck.CXX_METHOD, "Start", line=1,
                                children=[body], parent=cls)
        frontend._index_function(fn_cursor, "fake.cc")
        (fn,) = frontend.program.functions
        return frontend.program, fn

    def test_records_event_loop_registrations(self):
        program, fn = self._indexed_server_start()
        self.assertEqual(len(fn.registrations), 1)
        reg = fn.registrations[0]
        self.assertEqual((reg.kind, reg.recv_type), ("Schedule", "EventLoop"))
        # The lambda's fsync call must land inside the recorded body range
        # (and the later DoThing call outside it) so MS103 can attribute it.
        fsync = next(c for c in fn.calls if c.name == "fsync")
        tail = next(c for c in fn.calls if c.name == "DoThing")
        self.assertTrue(reg.body_start <= fsync.pos < reg.body_end)
        self.assertFalse(reg.body_start <= tail.pos < reg.body_end)

    def test_ms103_fires_on_the_clang_model(self):
        program, _ = self._indexed_server_start()
        findings = sca.run_rules(program)
        self.assertIn("MS103", rules_of(findings))
        ms103 = next(f for f in findings if f.rule == "MS103")
        self.assertIn("fsync", "\n".join(ms103.witness))

    def test_lock_scope_end_is_in_pos_counter_units(self):
        program, fn = self._indexed_server_start()
        (site,) = fn.acquires
        self.assertEqual(site.mutex, "Server::mu_")
        tail = next(c for c in fn.calls if c.name == "DoThing")
        # scope_end closes with the enclosing compound: it covers the call
        # after the acquisition and stays in the same counter the call
        # sites use (the old line*1000 scale would be >= 1000 here).
        self.assertGreaterEqual(site.scope_end, tail.pos)
        self.assertLess(site.scope_end, 100)


class FrontendSelectionTest(unittest.TestCase):
    def test_clang_hard_requirement_fails_when_absent(self):
        try:
            import clang.cindex  # noqa: F401
            self.skipTest("libclang present; hard-requirement path n/a")
        except ImportError:
            pass
        program, used = sca.build_program(FIXTURES, "clang", None, [])
        self.assertIsNone(program)
        self.assertEqual(used, "none")

    def test_auto_falls_back_to_text(self):
        program, used = sca.build_program(
            FIXTURES, "auto", None, ["ms104_leak.cc"])
        self.assertIsNotNone(program)
        self.assertIn(used, ("clang", "text"))


class CleanTreeTest(unittest.TestCase):
    def test_real_tree_is_clean_modulo_audited_allowlist(self):
        program, _ = sca.build_program(REPO_ROOT, "text", None)
        findings = sca.run_rules(program)
        findings, _ = sca.apply_suppressions(
            findings, program,
            sca.load_allowlist(TOOLS / "sca_allowlist.txt"))
        self.assertEqual(findings, [],
                         "\n".join(f.render() for f in findings))


if __name__ == "__main__":
    unittest.main()
