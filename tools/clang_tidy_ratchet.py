#!/usr/bin/env python3
"""Enforced clang-tidy ratchet (DESIGN.md section 12).

The committed .clang-tidy pins the check families (bugprone-*,
concurrency-*, performance-*); this script turns it from documentation
into a gate. It runs clang-tidy over every src/ translation unit in
compile_commands.json, normalizes the diagnostics to stable keys
(`file :: check`), and compares the multiset against the committed
baseline (tools/clang_tidy_baseline.txt):

  * a key absent from the baseline, or occurring more often than the
    baseline allows, FAILS the gate — new findings are not allowed in;
  * keys the baseline lists but the run no longer produces are reported
    as ratchet progress (tighten the baseline with --update-baseline).

Line numbers are deliberately not part of the key so unrelated edits
don't invalidate the baseline.

Bootstrap: clang-tidy does not exist in the default gcc-only dev
container, so the committed baseline may carry the `# UNPOPULATED`
marker. The first run on a machine that does have clang-tidy then writes
the observed findings as the baseline (exit 0, telling you to commit
it); every run after that enforces. `--require` turns the
tool-unavailable skip into a failure (CI uses it after installing
clang-tidy); without it, a missing clang-tidy or compile_commands.json
skips with a warning, matching how the thread-safety-analysis stage
degrades under gcc.
"""

from __future__ import annotations

import argparse
import collections
import json
import pathlib
import re
import shutil
import subprocess
import sys
from typing import Counter, List, Tuple

UNPOPULATED_MARKER = "# UNPOPULATED"
_DIAG_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s*"
    r"(?:warning|error):\s*(?P<msg>.*?)\s*\[(?P<check>[\w.,-]+)\]\s*$")


def find_build_dir(root: pathlib.Path,
                   explicit: pathlib.Path | None) -> pathlib.Path | None:
    candidates = [explicit] if explicit else \
        [root / "build", root / "build-check"]
    for cand in candidates:
        if cand and (cand / "compile_commands.json").exists():
            return cand
    return None


def source_files(build_dir: pathlib.Path,
                 root: pathlib.Path) -> List[pathlib.Path]:
    with open(build_dir / "compile_commands.json", encoding="utf-8") as f:
        entries = json.load(f)
    files = []
    src_root = (root / "src").resolve()
    for entry in entries:
        p = pathlib.Path(entry["file"])
        if not p.is_absolute():
            p = pathlib.Path(entry["directory"]) / p
        p = p.resolve()
        if p.suffix == ".cc" and str(p).startswith(str(src_root)):
            files.append(p)
    return sorted(set(files))


def run_clang_tidy(tidy: str, build_dir: pathlib.Path,
                   root: pathlib.Path,
                   files: List[pathlib.Path]) -> Counter[str]:
    findings: Counter[str] = collections.Counter()
    for chunk_start in range(0, len(files), 8):
        chunk = files[chunk_start:chunk_start + 8]
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet"]
            + [str(f) for f in chunk],
            capture_output=True, text=True)
        for line in proc.stdout.splitlines():
            m = _DIAG_RE.match(line)
            if not m:
                continue
            path = pathlib.Path(m.group("path"))
            try:
                rel = path.resolve().relative_to(root).as_posix()
            except ValueError:
                continue  # diagnostics in system headers
            for check in m.group("check").split(","):
                findings[f"{rel} :: {check}"] += 1
    return findings


def read_baseline(path: pathlib.Path) -> Tuple[Counter[str], bool]:
    baseline: Counter[str] = collections.Counter()
    unpopulated = False
    if not path.exists():
        return baseline, True
    for raw in path.read_text(encoding="utf-8").splitlines():
        if raw.strip() == UNPOPULATED_MARKER:
            unpopulated = True
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        count, _, key = line.partition(" ")
        baseline[key.strip()] = int(count)
    return baseline, unpopulated


def write_baseline(path: pathlib.Path, findings: Counter[str]) -> None:
    lines = [
        "# clang-tidy ratchet baseline (tools/clang_tidy_ratchet.py).",
        "# Format: <count> <file> :: <check>. A run may not exceed any",
        "# count; shrink entries here as findings are fixed.",
    ]
    for key in sorted(findings):
        lines.append(f"{findings[key]} {key}")
    if not findings:
        lines.append("# (no findings — the tree is tidy-clean)")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve()
                        .parent.parent)
    parser.add_argument("--build-dir", type=pathlib.Path, default=None)
    parser.add_argument("--baseline", type=pathlib.Path, default=None)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings")
    parser.add_argument("--require", action="store_true",
                        help="fail (not skip) when clang-tidy or "
                             "compile_commands.json is unavailable")
    opts = parser.parse_args(argv)

    root = opts.root.resolve()
    baseline_path = opts.baseline or root / "tools" / \
        "clang_tidy_baseline.txt"
    tidy = shutil.which("clang-tidy")
    build_dir = find_build_dir(root, opts.build_dir)
    if tidy is None or build_dir is None:
        reason = "clang-tidy not installed" if tidy is None else \
            "no compile_commands.json (configure with " \
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first)"
        if opts.require:
            print(f"clang-tidy-ratchet: FAIL — {reason} and --require set",
                  file=sys.stderr)
            return 2
        print(f"clang-tidy-ratchet: skipped — {reason}")
        return 0

    files = source_files(build_dir, root)
    findings = run_clang_tidy(tidy, build_dir, root, files)
    baseline, unpopulated = read_baseline(baseline_path)

    if opts.update_baseline or unpopulated:
        write_baseline(baseline_path, findings)
        verb = "bootstrapped" if unpopulated and not opts.update_baseline \
            else "updated"
        print(f"clang-tidy-ratchet: baseline {verb} with "
              f"{sum(findings.values())} finding(s) across "
              f"{len(findings)} key(s) — commit {baseline_path}")
        return 0

    new = findings - baseline
    fixed = baseline - findings
    if fixed:
        print(f"clang-tidy-ratchet: {sum(fixed.values())} baseline "
              "finding(s) no longer occur — tighten with "
              "--update-baseline:")
        for key in sorted(fixed):
            print(f"  -{fixed[key]} {key}")
    if new:
        print(f"clang-tidy-ratchet: FAIL — {sum(new.values())} NEW "
              "finding(s) beyond the committed baseline:",
              file=sys.stderr)
        for key in sorted(new):
            print(f"  +{new[key]} {key}", file=sys.stderr)
        return 1
    print(f"clang-tidy-ratchet: OK — {sum(findings.values())} finding(s), "
          "none beyond baseline "
          f"({len(files)} TU(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
