// medsync-sca fixture: MS102 MUST fire twice. Both loops iterate a
// std::unordered_map — whose order is implementation-defined — and feed
// an order-sensitive sink: once directly (Json::Append) and once through
// a helper that reaches a digest Update. Either way the emitted bytes
// change run to run.
#include <string>
#include <unordered_map>

#include "common/json.h"
#include "crypto/sha256.h"

class LeakySnapshot {
 public:
  void Dump(Json& out) {
    for (const auto& kv : items_) {
      out.Append(kv.second);  // hash order straight into serialized output
    }
  }

  void Fingerprint(crypto::Sha256& digest) {
    for (const auto& kv : items_) {
      FoldOne(digest, kv.second);  // transitive: helper reaches the digest
    }
  }

 private:
  void FoldOne(crypto::Sha256& digest, const std::string& value) {
    digest.Update(value.data(), value.size());
  }

  std::unordered_map<int, std::string> items_;
};
