// medsync-sca fixture: MS101 MUST fire on the lock-order cycle formed
// with ms101_cycle_b.cc (the two halves live in different TUs on purpose:
// the rule is whole-program). LockA takes its own mutex and then calls
// into LockB, which takes LockB::mu_ — while ms101_cycle_b.cc does the
// reverse. Two threads running Ping() on each object deadlock.
#include "common/threading/mutex.h"

class LockB;

class LockA {
 public:
  void Ping();
  void Grab();

 private:
  threading::Mutex mu_;
  LockB* other_;
};

void LockA::Ping() {
  threading::MutexLock lock(mu_);
  other_->Grab();  // acquires LockB::mu_ while holding LockA::mu_
}

void LockA::Grab() {
  threading::MutexLock lock(mu_);
}
