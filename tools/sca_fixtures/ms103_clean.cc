// medsync-sca fixture: MS103 must stay SILENT. The first callback does
// bounded non-blocking work (the corrected form: stage state, let the
// loop breathe). The second DOES block but carries an inline audited
// suppression — the fixture proves `// medsync-sca(MS103): ...` works.
#include <unistd.h>

#include "net/event_loop.h"

class PoliteServer {
 public:
  void Start() {
    loop_->Schedule(0, [this] { Tick(); });
    loop_->Schedule(0, [this] { Checkpoint(); });  // medsync-sca(MS103): audited fixture suppression — durability tick, bounded by fixture contract
  }

 private:
  void Tick() {
    ++ticks_;
    Stage(ticks_);
  }

  void Stage(int generation) { staged_ = generation; }

  void Checkpoint() { fsync(fd_); }

  net::EventLoop* loop_;
  int ticks_ = 0;
  int staged_ = 0;
  int fd_ = -1;
};
