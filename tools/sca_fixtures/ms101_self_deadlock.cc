// medsync-sca fixture: MS101 MUST fire — Recount() re-acquires mu_ via
// Size() while already holding it. threading::Mutex is non-recursive, so
// this deadlocks on the very first call.
#include "common/threading/mutex.h"

class SelfLocker {
 public:
  int Size() {
    threading::MutexLock lock(mu_);
    return count_;
  }

  int Recount() {
    threading::MutexLock lock(mu_);
    return Size();  // relocks mu_ under mu_
  }

 private:
  threading::Mutex mu_;
  int count_ = 0;
};
