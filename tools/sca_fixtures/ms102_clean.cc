// medsync-sca fixture: MS102 must stay SILENT — the three corrected
// forms. (1) rebuild in sorted order before serializing, (2) fold into an
// explicitly order-insensitive sink (RowDigestAcc's commutative multiset
// digest), (3) iterate an ordered container to begin with.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "relational/digest.h"

class TidySnapshot {
 public:
  void DumpSorted(Json& out) {
    std::vector<std::string> rows;
    for (const auto& kv : items_) {
      rows.push_back(kv.second);  // collect in hash order ...
    }
    std::sort(rows.begin(), rows.end());  // ... but sort before the sink
    for (const auto& row : rows) {
      out.Append(row);
    }
  }

  void Fingerprint(relational::RowDigestAcc& acc) {
    for (const auto& kv : items_) {
      acc.Add(kv.second);  // commutative fold: order cannot leak
    }
  }

  void DumpOrdered(Json& out) {
    for (const auto& kv : ordered_) {
      out.Append(kv.second);  // std::map iterates in key order
    }
  }

 private:
  std::unordered_map<int, std::string> items_;
  std::map<int, std::string> ordered_;
};
