// medsync-sca fixture: MS104 must stay SILENT — every sanctioned way to
// consume a bound Status/Result: branch on it, return it, pass it on,
// fold it into another status, or discard it loudly by name.
#include "common/status.h"

Status WriteThing();
void Consume(const Status& s);

Status BranchOnIt() {
  Status s = WriteThing();
  if (!s.ok()) return s;
  return Status::OK();
}

Status ReturnIt() {
  Status s = WriteThing();
  return s;
}

void PassItOn() {
  Status s = WriteThing();
  Consume(s);
}

void FoldIt() {
  Status first = WriteThing();
  Status second = WriteThing();
  if (first.ok() && second.ok()) Consume(first);
}

void DiscardLoudly() {
  Status best_effort = WriteThing();
  best_effort.IgnoreStatusForTest();  // grep-able, unlike a (void) cast
}

void AutoUsed() {
  auto outcome = WriteThing();
  Consume(outcome);
}
