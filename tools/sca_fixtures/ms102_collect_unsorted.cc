// medsync-sca fixture: MS102 MUST fire — the collect-then-sink leg. The
// loop gathers values out of a std::unordered_map into a vector and hands
// the vector straight to a serializer with no sort in between: the
// vector's element order *is* the hash order, so the sink's bytes still
// change run to run even though the sink sits outside the loop body.
// (ms102_clean.cc's DumpSorted is the corrected form of this flow.)
#include <string>
#include <unordered_map>
#include <vector>

void Serialize(const std::vector<std::string>& rows);

class UnsortedCollector {
 public:
  void Dump() {
    std::vector<std::string> rows;
    for (const auto& kv : items_) {
      rows.push_back(kv.second);  // hash order preserved in the vector ...
    }
    Serialize(rows);  // ... and consumed unsorted by the sink
  }

 private:
  std::unordered_map<int, std::string> items_;
};
