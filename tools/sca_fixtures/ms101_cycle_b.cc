// medsync-sca fixture: second half of the MS101 cross-TU cycle — see
// ms101_cycle_a.cc. LockB locks its own mutex, then calls back into
// LockA::Grab, closing LockA::mu_ -> LockB::mu_ -> LockA::mu_.
#include "common/threading/mutex.h"

class LockA;

class LockB {
 public:
  void Ping();
  void Grab();

 private:
  threading::Mutex mu_;
  LockA* other_;
};

void LockB::Ping() {
  threading::MutexLock lock(mu_);
  other_->Grab();  // acquires LockA::mu_ while holding LockB::mu_
}

void LockB::Grab() {
  threading::MutexLock lock(mu_);
}
