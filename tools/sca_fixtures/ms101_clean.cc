// medsync-sca fixture: MS101 must stay SILENT. Same two-object shape as
// the cycle fixtures, but corrected: both paths acquire in the same
// global order (OrderedA::mu_ before OrderedB::mu_), and the re-entrant
// helper follows the *Locked convention instead of relocking.
#include "common/threading/mutex.h"

class OrderedB {
 public:
  void Grab() {
    threading::MutexLock lock(mu_);
  }

 private:
  threading::Mutex mu_;
};

class OrderedA {
 public:
  void Ping() {
    threading::MutexLock lock(mu_);
    other_->Grab();  // A then B — the one sanctioned order
  }

  int Recount() {
    threading::MutexLock lock(mu_);
    return SizeLocked();  // helper asserts the caller holds mu_
  }

 private:
  int SizeLocked() const { return count_; }

  threading::Mutex mu_;
  OrderedB* other_;
  int count_ = 0;
};

class OrderedC {
 public:
  void Forward() {
    threading::MutexLock lock(mu_);
    target_->Grab();  // C then B: shares the A->B direction, no cycle
  }

 private:
  threading::Mutex mu_;
  OrderedB* target_;
};
