// medsync-sca fixture: MS103 MUST fire twice. Both callbacks run on the
// single-threaded net::EventLoop; one fsyncs through a helper chain, one
// parks on CondVar::Wait. Either blocks every timer and connection in the
// process for the duration.
#include <unistd.h>

#include "common/threading/mutex.h"
#include "net/event_loop.h"

class BlockingServer {
 public:
  void Start() {
    loop_->Schedule(0, [this] { PersistNow(); });  // fsync on the loop
    loop_->WatchFd(fd_, true, false,
                   [this](int fd, bool r, bool w) { AwaitTurn(); });
  }

 private:
  void PersistNow() { SyncFile(fd_); }

  void SyncFile(int fd) {
    fsync(fd);  // transitive: two hops below the registration
  }

  void AwaitTurn() {
    threading::MutexLock lock(mu_);
    while (!ready_) cv_.Wait(mu_);  // parks the loop thread
  }

  net::EventLoop* loop_;
  threading::Mutex mu_;
  threading::CondVar cv_;
  bool ready_ = false;
  int fd_ = -1;
};
