// medsync-sca fixture: MS104 MUST fire twice. Both bindings silence
// [[nodiscard]] + -Werror=unused-result by giving the Status a name, then
// never read it — the caller observes success whether or not the call
// failed. (This is exactly the gap MS005's `(void)` regex cannot see.)
#include "common/status.h"

Status WriteThing();
common::Result<int> CountThing();

void LeakExplicit() {
  Status ignored = WriteThing();  // bound, never branched on or returned
}

void LeakAuto() {
  auto outcome = WriteThing();  // auto-typed leak: same bug, no type token
}
